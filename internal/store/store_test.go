package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// implementations returns both stores under their contract names. The
// Mem store gets a working result tier so the shared contract applies
// to both halves.
func implementations(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": Mem(64), "file": fs}
}

func record(id, status string) JobRecord {
	return JobRecord{
		ID:      id,
		Kind:    "solve",
		Key:     strings.Repeat("ab", 32),
		Params:  json.RawMessage(`{"protocol":"one-fail","k":1000,"seed":1}`),
		Tenant:  "default",
		Status:  status,
		Created: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func TestJobStoreContract(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.GetJob("missing"); err != nil || ok {
				t.Fatalf("GetJob(missing) = %v, %v", ok, err)
			}
			rec := record("abcdef123456-1", StatusQueued)
			if err := s.PutJob(rec); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.GetJob(rec.ID)
			if err != nil || !ok {
				t.Fatalf("GetJob = %v, %v", ok, err)
			}
			if got.ID != rec.ID || got.Status != StatusQueued || got.Tenant != "default" ||
				!bytes.Equal(got.Params, rec.Params) || !got.Created.Equal(rec.Created) {
				t.Fatalf("round trip mutated the record: %+v", got)
			}

			// Replacing a record is a full overwrite.
			rec.Status = StatusRunning
			rec.LeaseUntil = rec.Created.Add(30 * time.Second)
			rec.Retries = 2
			if err := s.PutJob(rec); err != nil {
				t.Fatal(err)
			}
			got, _, _ = s.GetJob(rec.ID)
			if got.Status != StatusRunning || got.Retries != 2 || !got.LeaseUntil.Equal(rec.LeaseUntil) {
				t.Fatalf("overwrite lost fields: %+v", got)
			}

			// Jobs() lists everything written.
			if err := s.PutJob(record("abcdef123456-2", StatusDone)); err != nil {
				t.Fatal(err)
			}
			recs, err := s.Jobs()
			if err != nil || len(recs) != 2 {
				t.Fatalf("Jobs = %d records, %v", len(recs), err)
			}

			// Delete is idempotent.
			if err := s.DeleteJob(rec.ID); err != nil {
				t.Fatal(err)
			}
			if err := s.DeleteJob(rec.ID); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.GetJob(rec.ID); ok {
				t.Fatal("deleted record still present")
			}
		})
	}
}

func TestResultStoreContract(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			key := strings.Repeat("cd", 32)
			if _, ok, err := s.GetResult(key); err != nil || ok {
				t.Fatalf("GetResult(missing) = %v, %v", ok, err)
			}
			doc := []byte(`{"kind":"solve","slots":123}`)
			if err := s.PutResult(key, doc); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.GetResult(key)
			if err != nil || !ok || !bytes.Equal(got, doc) {
				t.Fatalf("GetResult = %s, %v, %v", got, ok, err)
			}
			// Content-addressed: re-publishing the same key is a no-op,
			// not an error.
			if err := s.PutResult(key, doc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMemResultCapZeroRetainsNothing(t *testing.T) {
	// The serving default: job records only, the server's LRU stays the
	// single in-memory result tier.
	s := Mem(0)
	if err := s.PutResult("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetResult("k"); ok {
		t.Fatal("cap-0 Mem retained a result")
	}
}

func TestMemResultFIFOBound(t *testing.T) {
	s := Mem(2)
	for i := 0; i < 3; i++ {
		if err := s.PutResult(fmt.Sprintf("k%d", i), []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := s.GetResult("k0"); ok {
		t.Fatal("oldest result survived over-capacity insert")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok, _ := s.GetResult(k); !ok {
			t.Fatalf("%s evicted early", k)
		}
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := record("deadbeef0123-7", StatusQueued)
	if err := s1.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)
	if err := s1.PutResult(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}

	// A fresh handle on the same directory — the restart path — sees
	// both the record and the result.
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.GetJob(rec.ID)
	if err != nil || !ok || got.Status != StatusQueued {
		t.Fatalf("reopened GetJob = %+v, %v, %v", got, ok, err)
	}
	if doc, ok, _ := s2.GetResult(key); !ok || string(doc) != `{"ok":true}` {
		t.Fatalf("reopened GetResult = %s, %v", doc, ok)
	}
}

func TestFileStoreSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(record("good00000000-1", StatusQueued)); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "jobs", "bad.json")
	if err := os.WriteFile(bad, []byte(`{"id": tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Jobs()
	if err != nil || len(recs) != 1 || recs[0].ID != "good00000000-1" {
		t.Fatalf("Jobs with corrupt neighbor = %+v, %v", recs, err)
	}
	// The corrupt file was set aside, not deleted — an operator can
	// inspect it — and a second scan no longer trips over it.
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt record not renamed aside: %v", err)
	}
	if recs, err := s.Jobs(); err != nil || len(recs) != 1 {
		t.Fatalf("second Jobs scan = %d records, %v", len(recs), err)
	}
}

func TestFileStoreRejectsUnsafeNames(t *testing.T) {
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../escape", "a/b", `a\b`} {
		if err := s.PutJob(JobRecord{ID: name}); err == nil {
			t.Fatalf("PutJob accepted unsafe id %q", name)
		}
		if err := s.PutResult(name, []byte(`1`)); err == nil {
			t.Fatalf("PutResult accepted unsafe key %q", name)
		}
	}
}

func TestFileStoreConcurrentWriters(t *testing.T) {
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("job%d-%d", w, i)
				if err := s.PutJob(record(id, StatusQueued)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs, err := s.Jobs()
	if err != nil || len(recs) != 160 {
		t.Fatalf("Jobs after concurrent writes = %d, %v", len(recs), err)
	}
}
