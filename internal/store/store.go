// Package store is the serving subsystem's pluggable persistence
// layer: job records (what work was accepted, who asked for it, how
// far it got) and result documents (keyed by the canonical spec hash,
// so results are content-addressed — the spec layer guarantees
// byte-identical keys across every front end).
//
// Two implementations ship:
//
//   - Mem — process memory. Job records live in a map and die with the
//     process, which is exactly the durability the server had before
//     this package existed; the in-memory server keeps its behavior
//     byte for byte. Result retention is optional (see Mem) because
//     the server already holds results in its bounded LRU cache — a
//     second unbounded copy would change the memory profile.
//   - File under OpenFile — one JSON record per job and one
//     content-addressed result file per canonical key beneath a data
//     directory, written with write-to-temp + fsync + atomic rename so
//     a crash never leaves a half-written record, and the directory
//     fsynced on publish so a completed job survives kill -9.
//
// The server writes through this layer on enqueue, start, publish and
// cancel; a recovery pass on boot replays the records back into the
// queue (docs/durability.md is the operator guide). The interfaces are
// deliberately tiny — a future networked store (Redis, SQL, object
// storage) only has to speak records and bytes.
package store

import (
	"encoding/json"
	"sync"
	"time"
)

// Job lifecycle states as persisted. These mirror the serving layer's
// states; the store treats them as opaque except for the queued /
// running / terminal distinction recovery needs.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// TerminalStatus reports whether a persisted status is final — a
// record recovery must never requeue.
func TerminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// JobRecord is the persisted form of one accepted job: enough to
// answer a poll after a restart (terminal records) or to rebuild and
// requeue the work (queued and lease-expired running records). Params
// is the spec layer's canonical parameter document — spec.Decode(Kind,
// Params) reconstructs the exact experiment, and Key is its canonical
// hash, which doubles as the result document's content address.
type JobRecord struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Params  json.RawMessage `json:"params,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Status  string          `json:"status"`
	Error   string          `json:"error,omitempty"`
	Retries int             `json:"retries,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// LeaseUntil is the running job's lease deadline: a worker that
	// takes a job owns it until this instant. A running record whose
	// lease has expired belongs to a dead process and may be requeued
	// (Retries+1), bounded by the server's -max-retries.
	LeaseUntil time.Time `json:"leaseUntil,omitempty"`
}

// JobStore persists job records by id.
type JobStore interface {
	// PutJob creates or replaces the record. Writes are atomic: a
	// reader (or a recovery pass after a crash) sees the old record or
	// the new one, never a torn mix.
	PutJob(rec JobRecord) error
	// GetJob returns the record for id, if present.
	GetJob(id string) (JobRecord, bool, error)
	// Jobs returns every persisted record, in no particular order.
	Jobs() ([]JobRecord, error)
	// DeleteJob removes the record; deleting an absent id is not an
	// error.
	DeleteJob(id string) error
}

// ResultStore persists result documents by canonical spec hash. The
// same key always maps to the same bytes — results are immutable and
// content-addressed — so PutResult over an existing key is a no-op
// rewrite, never a conflict.
type ResultStore interface {
	// PutResult durably publishes the result document under key.
	PutResult(key string, doc []byte) error
	// GetResult returns the document for key, if present. The returned
	// bytes must not be mutated.
	GetResult(key string) ([]byte, bool, error)
}

// Store is a combined job, result and session store, the unit the
// server is configured with.
type Store interface {
	JobStore
	ResultStore
	SessionStore
}

// Mem is the in-memory implementation: job records in a map, result
// documents in a FIFO-bounded map. resultCap bounds retained results;
// 0 retains none — PutResult discards and GetResult always misses —
// which is the serving default (the server's LRU cache is the only
// in-memory result tier, exactly the pre-store behavior and memory
// footprint). A positive cap makes Mem an honest full store for tests.
func Mem(resultCap int) Store {
	return &memStore{
		jobs:      make(map[string]JobRecord),
		results:   make(map[string][]byte),
		resultCap: resultCap,
	}
}

type memStore struct {
	mu        sync.Mutex
	jobs      map[string]JobRecord
	sessions  map[string]SessionRecord
	results   map[string][]byte
	order     []string // result insertion order, for FIFO eviction
	resultCap int
}

func (m *memStore) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[rec.ID] = rec
	return nil
}

func (m *memStore) GetJob(id string) (JobRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.jobs[id]
	return rec, ok, nil
}

func (m *memStore) Jobs() ([]JobRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobRecord, 0, len(m.jobs))
	for _, rec := range m.jobs {
		out = append(out, rec)
	}
	return out, nil
}

func (m *memStore) DeleteJob(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	return nil
}

func (m *memStore) PutResult(key string, doc []byte) error {
	if m.resultCap <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.results[key]; !ok {
		m.order = append(m.order, key)
	}
	m.results[key] = doc
	for len(m.results) > m.resultCap {
		oldest := m.order[0]
		m.order = m.order[1:]
		delete(m.results, oldest)
	}
	return nil
}

func (m *memStore) GetResult(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	doc, ok := m.results[key]
	return doc, ok, nil
}
