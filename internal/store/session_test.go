package store

import (
	"encoding/json"
	"testing"
	"time"
)

func testSessionStore(t *testing.T, s Store) {
	t.Helper()
	if recs, err := s.Sessions(); err != nil || len(recs) != 0 {
		t.Fatalf("fresh store: %v, %v", recs, err)
	}
	if _, ok, err := s.GetSession("nope"); err != nil || ok {
		t.Fatalf("absent session: ok=%v err=%v", ok, err)
	}
	rec := SessionRecord{
		ID:      "ab12cd34ef56-s1",
		Key:     "ab12cd34ef56",
		Tenant:  "team-a",
		Params:  json.RawMessage(`{"lambda":0.2}`),
		Log:     json.RawMessage(`[{"type":"stop","slot":65}]`),
		Status:  "stopped",
		Windows: 12,
		Dropped: 3,
		Created: time.Now().UTC().Truncate(time.Second),
		Stopped: time.Now().UTC().Truncate(time.Second),
	}
	if err := s.PutSession(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSession(rec.ID)
	if err != nil || !ok {
		t.Fatalf("GetSession: ok=%v err=%v", ok, err)
	}
	if got.Status != "stopped" || got.Windows != 12 || got.Dropped != 3 || string(got.Log) != string(rec.Log) {
		t.Fatalf("round trip mangled: %+v", got)
	}
	// Replace in place.
	rec.Windows = 20
	if err := s.PutSession(rec); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.GetSession(rec.ID)
	if got.Windows != 20 {
		t.Fatalf("replace failed: %+v", got)
	}
	recs, err := s.Sessions()
	if err != nil || len(recs) != 1 {
		t.Fatalf("Sessions: %v, %v", recs, err)
	}
	if err := s.DeleteSession(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSession(rec.ID); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if _, ok, _ := s.GetSession(rec.ID); ok {
		t.Fatal("session survived delete")
	}
}

func TestMemSessionStore(t *testing.T) {
	testSessionStore(t, Mem(0))
}

func TestFileSessionStore(t *testing.T) {
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testSessionStore(t, s)
	if err := s.PutSession(SessionRecord{ID: "../escape"}); err == nil {
		t.Fatal("unsafe id accepted")
	}
}

func TestFileSessionStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSession(SessionRecord{ID: "k1-s1", Status: "running"}); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s2.Sessions()
	if err != nil || len(recs) != 1 || recs[0].ID != "k1-s1" {
		t.Fatalf("reopen lost the record: %v, %v", recs, err)
	}
}
