package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// fileStore is the file-backed Store: a data directory owned by one
// macsimd process.
//
// Layout:
//
//	<dir>/jobs/<id>.json          one record per accepted job
//	<dir>/results/<kk>/<key>.json content-addressed result documents,
//	                              fanned out by the first two hex
//	                              characters of the canonical key
//
// Every write goes to a temp file in the destination directory, is
// fsynced, and is renamed into place — a crash at any instant leaves
// either the old file or the new one, never a torn record. Result
// publishes additionally fsync the destination directory, so a result
// that was acknowledged survives kill -9 of both the process and the
// page cache's good intentions.
type fileStore struct {
	dir     string
	jobs    string
	results string
}

// OpenFile opens (creating if needed) a file-backed store rooted at
// dir. The directory must be writable and owned by a single serving
// process; two daemons sharing a data-dir will fight over leases.
func OpenFile(dir string) (Store, error) {
	fs := &fileStore{
		dir:     dir,
		jobs:    filepath.Join(dir, "jobs"),
		results: filepath.Join(dir, "results"),
	}
	for _, d := range []string{fs.dir, fs.jobs, fs.results} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return fs, nil
}

// safeName rejects names that could escape the store's directories.
// Job ids and canonical keys are hex-and-dash tokens; anything else is
// a caller bug, not a file to create.
func safeName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("store: unsafe name %q", name)
	}
	return nil
}

// writeAtomic writes data to path via a temp file in the same
// directory: write, fsync, rename. When syncDir is set the parent
// directory is fsynced too, making the rename itself durable — the
// publish barrier.
func writeAtomic(path string, data []byte, syncDir bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if syncDir {
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}

func (f *fileStore) jobPath(id string) string {
	return filepath.Join(f.jobs, id+".json")
}

// resultPath fans results out by the first two characters of the key,
// so a long-lived store does not accumulate one directory with
// millions of entries.
func (f *fileStore) resultPath(key string) (string, error) {
	if err := safeName(key); err != nil {
		return "", err
	}
	fan := "xx"
	if len(key) >= 2 {
		fan = key[:2]
	}
	return filepath.Join(f.results, fan, key+".json"), nil
}

func (f *fileStore) PutJob(rec JobRecord) error {
	if err := safeName(rec.ID); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeAtomic(f.jobPath(rec.ID), data, true)
}

func (f *fileStore) GetJob(id string) (JobRecord, bool, error) {
	if err := safeName(id); err != nil {
		return JobRecord{}, false, err
	}
	data, err := os.ReadFile(f.jobPath(id))
	if os.IsNotExist(err) {
		return JobRecord{}, false, nil
	}
	if err != nil {
		return JobRecord{}, false, err
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return JobRecord{}, false, fmt.Errorf("store: corrupt job record %s: %w", id, err)
	}
	return rec, true, nil
}

// Jobs loads every record. A record that fails to parse (a torn write
// can't happen, but a full disk or an operator's editor can) is
// renamed aside with a .corrupt suffix and skipped rather than taking
// recovery down with it.
func (f *fileStore) Jobs() ([]JobRecord, error) {
	entries, err := os.ReadDir(f.jobs)
	if err != nil {
		return nil, err
	}
	var out []JobRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(f.jobs, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

func (f *fileStore) DeleteJob(id string) error {
	if err := safeName(id); err != nil {
		return err
	}
	err := os.Remove(f.jobPath(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (f *fileStore) PutResult(key string, doc []byte) error {
	path, err := f.resultPath(key)
	if err != nil {
		return err
	}
	// Content-addressed: an existing file already holds these bytes.
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return writeAtomic(path, doc, true)
}

func (f *fileStore) GetResult(key string) ([]byte, bool, error) {
	path, err := f.resultPath(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}
