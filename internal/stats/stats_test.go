package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummaryEmpty(t *testing.T) {
	t.Parallel()
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	if s.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v, want 0", s.Quantile(0.5))
	}
}

func TestSummaryKnownValues(t *testing.T) {
	t.Parallel()
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if got, want := s.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("max = %v, want 9", got)
	}
	if got := s.Median(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("median = %v, want 4.5", got)
	}
	if got := s.N(); got != 8 {
		t.Errorf("n = %v, want 8", got)
	}
}

func TestSummarySingle(t *testing.T) {
	t.Parallel()
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
	if s.Quantile(0) != 42 || s.Quantile(1) != 42 || s.Median() != 42 {
		t.Fatal("single-value quantiles wrong")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	t.Parallel()
	var s Summary
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 10},
		{q: 1, want: 40},
		{q: 0.5, want: 25},
		{q: 1.0 / 3, want: 20},
		{q: 0.25, want: 17.5},
		{q: -1, want: 10},
		{q: 2, want: 40},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

// TestWelfordMatchesNaive property-checks the streaming moments against a
// two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	t.Parallel()
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		varSum := 0.0
		for _, v := range raw {
			varSum += (float64(v) - mean) * (float64(v) - mean)
		}
		variance := varSum / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95Coverage(t *testing.T) {
	t.Parallel()
	// The 95% CI must cover the true mean in roughly 95% of experiments.
	src := rng.New(99)
	const experiments, samples = 2000, 50
	covered := 0
	for e := 0; e < experiments; e++ {
		var s Summary
		for i := 0; i < samples; i++ {
			s.Add(src.NormFloat64()*3 + 10)
		}
		if math.Abs(s.Mean()-10) <= s.CI95() {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI95 coverage = %v, want ~0.95", rate)
	}
}

func TestMerge(t *testing.T) {
	t.Parallel()
	var a, b, all Summary
	for i := 0; i < 100; i++ {
		v := float64(i * i % 37)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Fatalf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Median() != all.Median() {
		t.Fatalf("merged median = %v, want %v", a.Median(), all.Median())
	}
}

func TestStringFormat(t *testing.T) {
	t.Parallel()
	var s Summary
	s.Add(1)
	s.Add(3)
	got := s.String()
	if got == "" {
		t.Fatal("String() empty")
	}
}

func TestSampled(t *testing.T) {
	t.Parallel()
	var s Summary
	if got := s.Sampled(10); got != nil {
		t.Fatalf("empty summary sampled = %v, want nil", got)
	}
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	if got := s.Sampled(0); got != nil {
		t.Fatalf("max=0 sampled = %v, want nil", got)
	}
	// Below the cap: every observation, in insertion order.
	got := s.Sampled(10)
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("under-cap sample = %v, want all 5 values", got)
	}
	// Mutating the returned slice must not corrupt the summary.
	got[0] = 99
	if s.Quantile(0) != 1 {
		t.Fatal("Sampled aliases the summary's internal values")
	}
	// Above the cap: at most max values, spread across the range.
	var big Summary
	const n = 100001
	for i := 0; i < n; i++ {
		big.Add(float64(i))
	}
	sample := big.Sampled(1000)
	if len(sample) > 1000 || len(sample) < 900 {
		t.Fatalf("over-cap sample size = %d, want ~1000", len(sample))
	}
	if sample[0] != 0 || sample[len(sample)-1] < n-200 {
		t.Fatalf("sample does not span the range: first %v last %v", sample[0], sample[len(sample)-1])
	}
}

func TestKSDistance(t *testing.T) {
	t.Parallel()
	// Identical samples: distance 0, even with heavy ties.
	a := []float64{1, 1, 2, 2, 2, 3}
	b := []float64{3, 2, 1, 2, 1, 2}
	if d := KSDistance(a, b); d != 0 {
		t.Fatalf("identical multisets: distance %v, want 0", d)
	}
	// Disjoint supports: distance 1.
	if d := KSDistance([]float64{1, 2}, []float64{10, 11, 12}); d != 1 {
		t.Fatalf("disjoint samples: distance %v, want 1", d)
	}
	// Tie handling: {1,1,2} vs {1,2,2} — after consuming value 1 the CDFs
	// are 2/3 vs 1/3, so the distance is 1/3 (a naive merge would report
	// a larger gap mid-tie).
	if d := KSDistance([]float64{1, 1, 2}, []float64{1, 2, 2}); math.Abs(d-1.0/3) > 1e-12 {
		t.Fatalf("tied samples: distance %v, want 1/3", d)
	}
}

// --- CI math edge cases (feeding the adaptive-precision stopping rule) ---

func TestNormalQuantile(t *testing.T) {
	t.Parallel()
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.9999, 3.719016},
		{0.0001, -3.719016},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile at 0/1 must be ±Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) must be NaN", p)
		}
	}
}

func TestTQuantile(t *testing.T) {
	t.Parallel()
	// Reference values (R: qt(p, df)).
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.7062, 1e-3},  // exact closed form
		{0.975, 2, 4.302653, 1e-6}, // exact closed form
		{0.975, 3, 3.182446, 5e-3}, // expansion, worst small-df case
		{0.975, 5, 2.570582, 1e-3},
		{0.975, 10, 2.228139, 1e-4},
		{0.975, 30, 2.042272, 1e-5},
		{0.995, 10, 3.169273, 1e-3},
		{0.95, 10, 1.812461, 1e-4},
		{0.5, 7, 0, 1e-12},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); math.Abs(got-c.want) > c.tol {
			t.Errorf("TQuantile(%v, %d) = %v, want %v ± %v", c.p, c.df, got, c.want, c.tol)
		}
	}
	// Symmetry: Q(1-p) = -Q(p).
	for _, df := range []int{1, 2, 4, 25} {
		if got, want := TQuantile(0.05, df), -TQuantile(0.95, df); math.Abs(got-want) > 1e-12 {
			t.Errorf("df=%d: TQuantile(0.05) = %v, want %v", df, got, want)
		}
	}
	// The t interval dominates the normal one at any df.
	for _, df := range []int{1, 2, 3, 10, 100} {
		if TQuantile(0.975, df) < NormalQuantile(0.975) {
			t.Errorf("df=%d: t quantile below the normal quantile", df)
		}
	}
	// Domain errors and extremes.
	if !math.IsNaN(TQuantile(0.975, 0)) || !math.IsNaN(TQuantile(math.NaN(), 5)) {
		t.Error("TQuantile must be NaN for df < 1 or NaN p")
	}
	if !math.IsInf(TQuantile(1, 5), 1) || !math.IsInf(TQuantile(0, 5), -1) {
		t.Error("TQuantile at p = 0/1 must be ±Inf")
	}
}

func TestCIAtSmallSamples(t *testing.T) {
	t.Parallel()
	// n < 2: no interval is estimable — CIAt reports 0 and callers must
	// gate on N() themselves.
	var s Summary
	if s.CIAt(0.95) != 0 {
		t.Fatal("empty summary: CIAt must be 0")
	}
	s.Add(5)
	if s.CIAt(0.95) != 0 {
		t.Fatal("single observation: CIAt must be 0")
	}
	// n = 2 uses the df = 1 (Cauchy) critical value 12.706…: the interval
	// is far wider than the normal approximation — the stopping rule must
	// not claim ±1% off two samples.
	s.Add(7)
	if got, norm := s.CIAt(0.95), s.CI95(); got < 6*norm {
		t.Fatalf("n=2: t interval %v should dwarf the normal one %v", got, norm)
	}
}

func TestCIAtZeroVariance(t *testing.T) {
	t.Parallel()
	var s Summary
	for i := 0; i < 5; i++ {
		s.Add(3.25)
	}
	for _, conf := range []float64{0.5, 0.95, 0.999999} {
		if got := s.CIAt(conf); got != 0 {
			t.Fatalf("zero variance at confidence %v: CIAt = %v, want 0", conf, got)
		}
	}
}

func TestCIAtExtremeConfidence(t *testing.T) {
	t.Parallel()
	var s Summary
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	// Monotone in confidence; finite strictly inside (0, 1); infinite at 1.
	lo, mid, hi := s.CIAt(0.5), s.CIAt(0.95), s.CIAt(0.9999)
	if !(lo < mid && mid < hi) {
		t.Fatalf("CIAt not monotone: %v, %v, %v", lo, mid, hi)
	}
	if math.IsInf(hi, 0) || math.IsNaN(hi) {
		t.Fatalf("CIAt(0.9999) = %v, want finite", hi)
	}
	if !math.IsInf(s.CIAt(1), 1) {
		t.Fatalf("CIAt(1) = %v, want +Inf (a certain interval is unbounded)", s.CIAt(1))
	}
}
