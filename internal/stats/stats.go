// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moment accumulation (Welford), quantiles,
// and normal-approximation confidence intervals for reporting repeated
// simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations in a single pass (Welford's algorithm
// for mean and variance) while retaining the raw values for quantiles.
// The zero value is an empty summary ready for use.
type Summary struct {
	n      int
	mean   float64
	m2     float64
	min    float64
	max    float64
	values []float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations using
// linear interpolation between order statistics. It returns 0 for an
// empty summary.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// String implements fmt.Stringer with a compact mean ± stderr rendering.
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.StdErr(), s.n)
}

// Merge folds other into s, as if all of other's observations had been
// added to s directly.
func (s *Summary) Merge(other *Summary) {
	for _, v := range other.values {
		s.Add(v)
	}
}
