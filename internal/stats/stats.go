// Package stats provides the small statistical toolkit used by the
// experiment harness and the adaptive-precision Monte Carlo engine:
// streaming moment accumulation (Welford), order-statistic quantiles,
// two-sample Kolmogorov–Smirnov distances, and confidence intervals for
// the mean — both the quick normal approximation (CI95) and the
// Student-t interval at arbitrary confidence (CIAt) that
// internal/montecarlo's stopping rule is built on.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations in a single pass (Welford's algorithm
// for mean and variance) while retaining the raw values for quantiles.
// The zero value is an empty summary ready for use.
type Summary struct {
	n      int
	mean   float64
	m2     float64
	min    float64
	max    float64
	values []float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// CIAt returns the half-width of the Student-t confidence interval for
// the mean at the given two-sided confidence level (e.g. 0.95). With
// fewer than two observations no interval is estimable and CIAt returns
// 0 — callers deciding convergence must gate on N() ≥ 2 themselves
// (internal/montecarlo enforces MinReps ≥ 2 for exactly this reason).
// Zero-variance samples yield a zero half-width at any confidence.
func (s *Summary) CIAt(confidence float64) float64 {
	if s.n < 2 {
		return 0
	}
	return TQuantile((1+confidence)/2, s.n-1) * s.StdErr()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations using
// linear interpolation between order statistics. It returns 0 for an
// empty summary.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// String implements fmt.Stringer with a compact mean ± stderr rendering.
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.StdErr(), s.n)
}

// Merge folds other into s, as if all of other's observations had been
// added to s directly.
func (s *Summary) Merge(other *Summary) {
	for _, v := range other.values {
		s.Add(v)
	}
}

// KSDistance computes the two-sample Kolmogorov–Smirnov statistic between
// a and b (both are sorted in place). Tie groups are consumed in full
// before the CDF gap is measured: simulation completion times are
// integers, so ties are common and a naive two-pointer merge would
// overstate the distance. It is the agreement metric the engine-validation
// tests use (internal/engine, internal/dynamic).
func KSDistance(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	maxGap := 0.0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i >= len(a):
			v = b[j]
		case j >= len(b):
			v = a[i]
		default:
			v = math.Min(a[i], b[j])
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution (the probit function) using Acklam's rational
// approximation, accurate to about 1.15e-9 over (0, 1). It returns ±Inf
// for p = 0 or 1 and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const low, high = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < low: // lower tail
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > high: // upper tail, by symmetry
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default: // central region
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	return x
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom — the critical value behind CIAt and the
// adaptive-precision stopping rule. df = 1 and 2 use the closed forms;
// larger df use the Cornish–Fisher expansion of the normal quantile
// (Hill 1970), accurate to a few 1e-4 at the confidence levels used
// here. It returns NaN for df < 1 or p outside [0, 1], and ±Inf for
// p = 0 or 1.
func TQuantile(p float64, df int) float64 {
	switch {
	case df < 1 || math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	case df == 1: // Cauchy
		return math.Tan(math.Pi * (p - 0.5))
	case df == 2:
		return (2*p - 1) * math.Sqrt(2/(4*p*(1-p)))
	}
	z := NormalQuantile(p)
	n := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	z9 := z7 * z * z
	return z +
		(z3+z)/(4*n) +
		(5*z5+16*z3+3*z)/(96*n*n) +
		(3*z7+19*z5+17*z3-15*z)/(384*n*n*n) +
		(79*z9+776*z7+1482*z5-1920*z3-945*z)/(92160*n*n*n*n)
}

// Sampled returns at most max observations taken at a fixed stride across
// the insertion order (all of them when n ≤ max). It lets aggregators
// bound their memory when pooling very large summaries while keeping
// quantile estimates representative.
func (s *Summary) Sampled(max int) []float64 {
	if max <= 0 || s.n == 0 {
		return nil
	}
	if s.n <= max {
		return append([]float64(nil), s.values...)
	}
	stride := (s.n + max - 1) / max
	out := make([]float64, 0, max)
	for i := 0; i < s.n; i += stride {
		out = append(out, s.values[i])
	}
	return out
}
