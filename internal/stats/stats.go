// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moment accumulation (Welford), quantiles,
// and normal-approximation confidence intervals for reporting repeated
// simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations in a single pass (Welford's algorithm
// for mean and variance) while retaining the raw values for quantiles.
// The zero value is an empty summary ready for use.
type Summary struct {
	n      int
	mean   float64
	m2     float64
	min    float64
	max    float64
	values []float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations using
// linear interpolation between order statistics. It returns 0 for an
// empty summary.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// String implements fmt.Stringer with a compact mean ± stderr rendering.
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.StdErr(), s.n)
}

// Merge folds other into s, as if all of other's observations had been
// added to s directly.
func (s *Summary) Merge(other *Summary) {
	for _, v := range other.values {
		s.Add(v)
	}
}

// KSDistance computes the two-sample Kolmogorov–Smirnov statistic between
// a and b (both are sorted in place). Tie groups are consumed in full
// before the CDF gap is measured: simulation completion times are
// integers, so ties are common and a naive two-pointer merge would
// overstate the distance. It is the agreement metric the engine-validation
// tests use (internal/engine, internal/dynamic).
func KSDistance(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	maxGap := 0.0
	for i < len(a) || j < len(b) {
		var v float64
		switch {
		case i >= len(a):
			v = b[j]
		case j >= len(b):
			v = a[i]
		default:
			v = math.Min(a[i], b[j])
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// Sampled returns at most max observations taken at a fixed stride across
// the insertion order (all of them when n ≤ max). It lets aggregators
// bound their memory when pooling very large summaries while keeping
// quantile estimates representative.
func (s *Summary) Sampled(max int) []float64 {
	if max <= 0 || s.n == 0 {
		return nil
	}
	if s.n <= max {
		return append([]float64(nil), s.values...)
	}
	stride := (s.n + max - 1) / max
	out := make([]float64, 0, max)
	for i := 0; i < s.n; i += stride {
		out = append(out, s.values[i])
	}
	return out
}
