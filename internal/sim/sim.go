// Package sim implements an exact per-node simulator of the paper's
// communication model (§2): a synchronous single-hop Radio Network with a
// shared slotted channel and no collision detection.
//
// In every slot each active station independently decides whether to
// transmit. If exactly one station transmits, the slot is a success: the
// message is delivered, every non-transmitting station receives it, and
// the transmitter becomes idle (it gets an acknowledgement, as in the IEEE
// 802.11 MAC — §2 of the paper). If zero or more than one station
// transmits, stations perceive only noise: silence and collision are
// indistinguishable.
//
// The simulator executes protocol automata node by node and slot by slot.
// It is the ground truth against which the scalable aggregate engines in
// internal/engine are validated; use those engines for large k. For
// feedback-oblivious stations (protocol.AttemptStation) an opt-in
// event-driven path built on internal/kernel skips silent slots entirely
// (WithEventDriven); the slot-by-slot loop remains the reference it is
// validated against.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// Outcome classifies what happened on the channel in one slot.
type Outcome uint8

// Channel outcomes. A station cannot distinguish Silence from Collision
// (channel without collision detection); the distinction exists only in
// the simulator's omniscient view.
const (
	Silence Outcome = iota + 1
	Success
	Collision
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Silence:
		return "silence"
	case Success:
		return "success"
	case Collision:
		return "collision"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// SlotRecord describes one slot for tracing.
type SlotRecord struct {
	Slot         uint64
	Transmitters int
	Outcome      Outcome
	// Deliverer is the index of the station whose message was delivered,
	// or -1 if the slot was not a success.
	Deliverer int
	// Active is the number of stations still holding a message at the
	// start of the slot.
	Active int
}

// Result summarizes an execution.
type Result struct {
	// Slots is the number of communication steps until the last message
	// was delivered (the static k-selection cost measured in the paper).
	Slots uint64
	// Delivered is the number of messages delivered (= k on success).
	Delivered int
	// Successes, Collisions and Silences count slot outcomes up to and
	// including the completion slot.
	Successes  uint64
	Collisions uint64
	Silences   uint64
	// DeliveryOrder lists station indices in order of delivery when the
	// WithDeliveryOrder option is set; nil otherwise.
	DeliveryOrder []int
}

// ErrSlotLimit is returned when an execution exceeds its slot budget
// before all messages are delivered.
var ErrSlotLimit = errors.New("sim: slot limit exceeded before all messages were delivered")

// CDStation is implemented by stations that run on a channel WITH
// collision detection (the related-work model of §2: Martel, Willard,
// and the tree algorithms of Capetanakis, Hayes and Tsybakov–Mikhailov).
// The simulator delivers the full ternary outcome to such stations
// instead of the reception-only Feedback of the paper's model.
type CDStation interface {
	protocol.Station
	// FeedbackOutcome reports the slot's ternary outcome. transmitted is
	// what WillTransmit returned. It is called instead of Feedback.
	FeedbackOutcome(slot uint64, transmitted bool, outcome Outcome)
}

// config carries the run options.
type config struct {
	maxSlots      uint64
	trace         func(SlotRecord)
	deliveryOrder bool
	arrivals      []uint64
	jammed        func(slot uint64) bool
	stopAfter     int
	event         bool
}

// Option configures Run.
type Option func(*config)

// WithMaxSlots caps the execution length; Run returns ErrSlotLimit if the
// cap is hit. The default cap is 100 million slots — far beyond any
// correct protocol's completion time for the sizes this engine is meant
// for — so that a livelocked protocol under test terminates.
func WithMaxSlots(n uint64) Option {
	return func(c *config) { c.maxSlots = n }
}

// WithTrace installs a per-slot callback, invoked after the slot resolves.
func WithTrace(fn func(SlotRecord)) Option {
	return func(c *config) { c.trace = fn }
}

// WithDeliveryOrder records the order in which stations deliver.
func WithDeliveryOrder() Option {
	return func(c *config) { c.deliveryOrder = true }
}

// WithArrivals sets per-station activation slots: station i becomes active
// (holds a message) at the start of slot arrivals[i]. len(arrivals) must
// equal the number of stations; slots are numbered from 1. The default is
// the paper's static (batched) arrival: every station active from slot 1.
//
// This option supports the dynamic-arrival extension (§6 future work);
// completion is still defined as the delivery of all messages.
func WithArrivals(arrivals []uint64) Option {
	return func(c *config) { c.arrivals = arrivals }
}

// WithJammer injects an adversary that transmits garbage in every slot
// for which jammed returns true: any station transmission in such a slot
// collides, and listeners hear noise. Failure injection for robustness
// tests; not part of the paper's model.
func WithJammer(jammed func(slot uint64) bool) Option {
	return func(c *config) { c.jammed = jammed }
}

// WithStopAfterDeliveries ends the execution as soon as n messages have
// been delivered (n ≥ 1). Used for leader election (n = 1) and for
// time-to-first-delivery experiments (the Ω(log n) lower bound of
// Kushilevitz–Mansour cited in §2 concerns exactly this quantity).
func WithStopAfterDeliveries(n int) Option {
	return func(c *config) { c.stopAfter = n }
}

// Run simulates the stations until every one of them has delivered its
// message, and returns the execution summary. Stations are driven in
// index order within each slot using the single randomness source src,
// so executions are fully reproducible from (stations, seed).
func Run(stations []protocol.Station, src *rng.Rand, opts ...Option) (Result, error) {
	cfg := config{maxSlots: 100_000_000}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.arrivals != nil && len(cfg.arrivals) != len(stations) {
		return Result{}, fmt.Errorf("sim: %d arrival slots for %d stations", len(cfg.arrivals), len(stations))
	}
	if cfg.event {
		return runEvent(stations, src, &cfg)
	}

	var res Result
	if cfg.deliveryOrder {
		res.DeliveryOrder = make([]int, 0, len(stations))
	}
	if len(stations) == 0 {
		return res, nil
	}

	// active holds indices of stations that hold an undelivered message;
	// pending holds not-yet-arrived stations when arrivals are staggered.
	active := make([]int, 0, len(stations))
	var pending []int
	if cfg.arrivals == nil {
		for i := range stations {
			active = append(active, i)
		}
	} else {
		for i := range stations {
			if cfg.arrivals[i] <= 1 {
				active = append(active, i)
			} else {
				pending = append(pending, i)
			}
		}
	}

	transmitters := make([]int, 0, len(stations))
	for slot := uint64(1); ; slot++ {
		if slot > cfg.maxSlots {
			return res, fmt.Errorf("%w (limit %d, delivered %d/%d)",
				ErrSlotLimit, cfg.maxSlots, res.Delivered, len(stations))
		}
		// Activate stations whose messages arrive at this slot.
		if len(pending) > 0 {
			kept := pending[:0]
			for _, i := range pending {
				if cfg.arrivals[i] <= slot {
					active = append(active, i)
				} else {
					kept = append(kept, i)
				}
			}
			pending = kept
		}

		transmitters = transmitters[:0]
		for _, i := range active {
			if stations[i].WillTransmit(slot, src) {
				transmitters = append(transmitters, i)
			}
		}

		jammed := cfg.jammed != nil && cfg.jammed(slot)
		rec := SlotRecord{Slot: slot, Transmitters: len(transmitters), Deliverer: -1, Active: len(active)}
		switch {
		case jammed:
			// The adversary transmits: any station transmission collides
			// with it, and an empty slot carries only garbage — noise
			// either way, recorded as a collision.
			rec.Outcome = Collision
			res.Collisions++
		case len(transmitters) == 0:
			rec.Outcome = Silence
			res.Silences++
		case len(transmitters) == 1:
			rec.Outcome = Success
			rec.Deliverer = transmitters[0]
			res.Successes++
		default:
			rec.Outcome = Collision
			res.Collisions++
		}

		// notify delivers the slot outcome to one still-active station,
		// routing ternary feedback to collision-detection stations.
		notify := func(i int, transmitted bool) {
			if cd, ok := stations[i].(CDStation); ok {
				cd.FeedbackOutcome(slot, transmitted, rec.Outcome)
				return
			}
			stations[i].Feedback(slot, transmitted, rec.Outcome == Success)
		}

		if rec.Outcome == Success {
			res.Delivered++
			if cfg.deliveryOrder {
				res.DeliveryOrder = append(res.DeliveryOrder, rec.Deliverer)
			}
			// Remove the deliverer, then notify the remaining active
			// stations. A success slot has exactly one transmitter — the
			// deliverer — so every remaining station was listening and
			// receives the message.
			kept := active[:0]
			for _, i := range active {
				if i != rec.Deliverer {
					kept = append(kept, i)
				}
			}
			active = kept
			for _, i := range active {
				notify(i, false)
			}
		} else {
			// No delivery: transmitters heard nothing (they were talking),
			// listeners heard noise. Neither receives a message.
			j := 0
			for _, i := range active {
				transmitted := j < len(transmitters) && transmitters[j] == i
				if transmitted {
					j++
				}
				notify(i, transmitted)
			}
		}

		if cfg.trace != nil {
			cfg.trace(rec)
		}
		if res.Delivered == len(stations) || (cfg.stopAfter > 0 && res.Delivered >= cfg.stopAfter) {
			res.Slots = slot
			return res, nil
		}
	}
}
