package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// scriptStation transmits exactly at the slots listed in its script and
// records the feedback it receives.
type scriptStation struct {
	script   map[uint64]bool
	feedback []SlotRecord // reuses SlotRecord fields loosely for assertions
	received []uint64     // slots at which a message was received
}

func (s *scriptStation) WillTransmit(slot uint64, _ *rng.Rand) bool {
	return s.script[slot]
}

func (s *scriptStation) Feedback(slot uint64, transmitted, received bool) {
	if received {
		s.received = append(s.received, slot)
	}
}

var _ protocol.Station = (*scriptStation)(nil)

func TestRunEmpty(t *testing.T) {
	t.Parallel()
	res, err := Run(nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 0 || res.Delivered != 0 {
		t.Fatalf("empty run = %+v, want zero result", res)
	}
}

func TestRunScriptedOutcomes(t *testing.T) {
	t.Parallel()
	// Slot 1: silence. Slot 2: collision (a, b). Slot 3: a alone delivers.
	// Slot 4: silence for b... then slot 5: b delivers.
	a := &scriptStation{script: map[uint64]bool{2: true, 3: true}}
	b := &scriptStation{script: map[uint64]bool{2: true, 5: true}}
	var trace []SlotRecord
	res, err := Run([]protocol.Station{a, b}, rng.New(1), WithTrace(func(r SlotRecord) {
		trace = append(trace, r)
	}), WithDeliveryOrder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 5 {
		t.Fatalf("completion slot = %d, want 5", res.Slots)
	}
	if res.Delivered != 2 || res.Successes != 2 || res.Collisions != 1 || res.Silences != 2 {
		t.Fatalf("unexpected counts: %+v", res)
	}
	wantOrder := []int{0, 1}
	for i, v := range wantOrder {
		if res.DeliveryOrder[i] != v {
			t.Fatalf("delivery order = %v, want %v", res.DeliveryOrder, wantOrder)
		}
	}
	wantOutcomes := []Outcome{Silence, Collision, Success, Silence, Success}
	for i, r := range trace {
		if r.Outcome != wantOutcomes[i] {
			t.Fatalf("slot %d outcome = %v, want %v", r.Slot, r.Outcome, wantOutcomes[i])
		}
	}
	// b must have received a's message at slot 3; a must never receive
	// (it was gone before b transmitted).
	if len(b.received) != 1 || b.received[0] != 3 {
		t.Fatalf("b received at %v, want [3]", b.received)
	}
	if len(a.received) != 0 {
		t.Fatalf("a received at %v, want none", a.received)
	}
}

func TestRunCollisionNotReceived(t *testing.T) {
	t.Parallel()
	// Three stations: two collide at slot 1 while the third listens; nobody
	// may receive anything. Then they deliver one by one.
	a := &scriptStation{script: map[uint64]bool{1: true, 2: true}}
	b := &scriptStation{script: map[uint64]bool{1: true, 3: true}}
	c := &scriptStation{script: map[uint64]bool{4: true}}
	res, err := Run([]protocol.Station{a, b, c}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 4 {
		t.Fatalf("completion slot = %d, want 4", res.Slots)
	}
	// c heard the two successes (slots 2, 3); a and b heard each other's
	// deliveries after their own collision: a hears slot 3? No — a
	// delivered at slot 2 and left, so a hears nothing; b hears slot 2.
	if len(a.received) != 0 {
		t.Fatalf("a received %v, want none", a.received)
	}
	if len(b.received) != 1 || b.received[0] != 2 {
		t.Fatalf("b received %v, want [2]", b.received)
	}
	if len(c.received) != 2 || c.received[0] != 2 || c.received[1] != 3 {
		t.Fatalf("c received %v, want [2 3]", c.received)
	}
}

func TestRunSlotLimit(t *testing.T) {
	t.Parallel()
	// Two stations that always transmit: permanent collision.
	a := &alwaysStation{}
	b := &alwaysStation{}
	_, err := Run([]protocol.Station{a, b}, rng.New(1), WithMaxSlots(100))
	if !errors.Is(err, ErrSlotLimit) {
		t.Fatalf("error = %v, want ErrSlotLimit", err)
	}
}

type alwaysStation struct{}

func (*alwaysStation) WillTransmit(uint64, *rng.Rand) bool { return true }
func (*alwaysStation) Feedback(uint64, bool, bool)         {}

func TestRunArrivalsValidation(t *testing.T) {
	t.Parallel()
	_, err := Run([]protocol.Station{&alwaysStation{}}, rng.New(1), WithArrivals([]uint64{1, 2}))
	if err == nil {
		t.Fatal("mismatched arrivals accepted, want error")
	}
}

func TestRunStaggeredArrivals(t *testing.T) {
	t.Parallel()
	// Station 0 arrives at slot 1 and transmits every slot it is active;
	// station 1 arrives at slot 3. Station 0 delivers alone at slot 1;
	// station 1 delivers at slot 3.
	a := &scriptStation{script: map[uint64]bool{1: true, 2: true, 3: true}}
	b := &scriptStation{script: map[uint64]bool{3: true}}
	res, err := Run([]protocol.Station{a, b}, rng.New(1), WithArrivals([]uint64{1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 3 || res.Successes != 2 {
		t.Fatalf("result = %+v, want completion at slot 3 with 2 successes", res)
	}
}

// TestSingleStationOFA: with k = 1, One-Fail Adaptive must deliver by slot
// 2 at the latest (the first BT-step has σ = 0, so transmission
// probability 1).
func TestSingleStationOFA(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 200; seed++ {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run([]protocol.Station{protocol.NewFairStation(ctrl)}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Slots > 2 {
			t.Fatalf("seed %d: k=1 OFA completed at slot %d, want ≤ 2", seed, res.Slots)
		}
	}
}

// TestSingleStationEBB: with k = 1, Exp Back-on/Back-off delivers within
// the first window (2 slots).
func TestSingleStationEBB(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 200; seed++ {
		sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run([]protocol.Station{protocol.NewWindowStation(sched)}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Slots > 2 {
			t.Fatalf("seed %d: k=1 EBB completed at slot %d, want ≤ 2", seed, res.Slots)
		}
	}
}

// TestRunInvariants checks structural invariants on a real protocol run:
// one delivery per success slot, delivered ≤ k, counts add up, active
// counts weakly decrease.
func TestRunInvariants(t *testing.T) {
	t.Parallel()
	const k = 64
	stations := make([]protocol.Station, k)
	for i := range stations {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			t.Fatal(err)
		}
		stations[i] = protocol.NewFairStation(ctrl)
	}
	delivered := 0
	prevActive := k + 1
	var lastSlot uint64
	res, err := Run(stations, rng.New(42), WithTrace(func(r SlotRecord) {
		if r.Slot != lastSlot+1 {
			t.Fatalf("non-consecutive slots: %d after %d", r.Slot, lastSlot)
		}
		lastSlot = r.Slot
		if r.Active > prevActive {
			t.Fatalf("active count grew: %d -> %d", prevActive, r.Active)
		}
		prevActive = r.Active
		switch r.Outcome {
		case Success:
			if r.Transmitters != 1 || r.Deliverer < 0 || r.Deliverer >= k {
				t.Fatalf("bad success record: %+v", r)
			}
			delivered++
		case Collision:
			if r.Transmitters < 2 {
				t.Fatalf("collision with %d transmitters", r.Transmitters)
			}
		case Silence:
			if r.Transmitters != 0 {
				t.Fatalf("silence with %d transmitters", r.Transmitters)
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != k || res.Delivered != k {
		t.Fatalf("delivered %d/%d, want %d", delivered, res.Delivered, k)
	}
	if res.Successes+res.Collisions+res.Silences != res.Slots {
		t.Fatalf("outcome counts %d+%d+%d don't sum to %d slots",
			res.Successes, res.Collisions, res.Silences, res.Slots)
	}
}

// TestDeterminism: identical seeds and stations yield identical executions.
func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() Result {
		const k = 32
		stations := make([]protocol.Station, k)
		for i := range stations {
			ctrl, _ := core.NewOneFailAdaptive(core.DefaultOFADelta)
			stations[i] = protocol.NewFairStation(ctrl)
		}
		res, err := Run(stations, rng.New(7), WithDeliveryOrder())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Slots != b.Slots || a.Collisions != b.Collisions {
		t.Fatalf("executions diverged: %+v vs %+v", a, b)
	}
	for i := range a.DeliveryOrder {
		if a.DeliveryOrder[i] != b.DeliveryOrder[i] {
			t.Fatalf("delivery orders diverged at %d", i)
		}
	}
}

// TestOFACompletesSmall exercises the full protocol end to end for several
// small k and verifies completion within a generous multiple of the
// Theorem 1 bound.
func TestOFACompletesSmall(t *testing.T) {
	t.Parallel()
	for _, k := range []int{1, 2, 3, 5, 8, 16, 50, 128} {
		stations := make([]protocol.Station, k)
		for i := range stations {
			ctrl, _ := core.NewOneFailAdaptive(core.DefaultOFADelta)
			stations[i] = protocol.NewFairStation(ctrl)
		}
		res, err := Run(stations, rng.New(uint64(k)))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		logK := math.Log2(float64(k) + 1)
		bound := uint64(10*2*(core.DefaultOFADelta+1)*float64(k) + 200*logK*logK + 100)
		if res.Slots > bound {
			t.Errorf("k=%d: completed in %d slots, want ≤ %d", k, res.Slots, bound)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		o    Outcome
		want string
	}{
		{o: Silence, want: "silence"},
		{o: Success, want: "success"},
		{o: Collision, want: "collision"},
		{o: Outcome(9), want: "Outcome(9)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Outcome(%d).String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}
