package sim

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// This file is the event-driven fast path of the per-node simulator,
// built on the kernel.Calendar timing wheel. It applies when every
// station implements protocol.AttemptStation — i.e. declares that its
// transmission slots form a private stochastic process independent of
// channel feedback (windowed back-on/back-off stations). Then the
// channel matters only at slots where somebody transmits: the simulator
// keeps each station's next attempt in the calendar and jumps from
// occupied slot to occupied slot, skipping silence in O(1).
//
// The path is opt-in (WithEventDriven) rather than automatic: the
// slot-by-slot loop in Run is this repository's ground truth, and it
// must stay independent of the kernel it validates. Agreement between
// the two paths is enforced by Kolmogorov–Smirnov tests in event_test.go.

// WithEventDriven routes the run through the event-driven engine. Every
// station must implement protocol.AttemptStation and must not implement
// CDStation, and the run must not use WithTrace or WithJammer (those
// observe silent slots, which the event engine never visits); Run
// returns an error otherwise. Results are identical in distribution to
// the default slot-by-slot path, but the draw sequence differs, so a
// fixed seed yields a different (equally valid) execution.
func WithEventDriven() Option {
	return func(c *config) { c.event = true }
}

// runEvent is the event-driven counterpart of the main loop in Run.
func runEvent(stations []protocol.Station, src *rng.Rand, cfg *config) (Result, error) {
	if cfg.trace != nil {
		return Result{}, fmt.Errorf("sim: WithEventDriven is incompatible with WithTrace (silent slots are skipped, not observed)")
	}
	if cfg.jammed != nil {
		return Result{}, fmt.Errorf("sim: WithEventDriven is incompatible with WithJammer (jammed silent slots would go unvisited); for jammed event-driven runs use dynamic.WithJammer on the windowed path (dynamic.RunWindowEvent), which models jamming exactly without visiting silent slots")
	}
	att := make([]protocol.AttemptStation, len(stations))
	for i, s := range stations {
		a, ok := s.(protocol.AttemptStation)
		if !ok {
			return Result{}, fmt.Errorf("sim: WithEventDriven requires every station to implement protocol.AttemptStation; station %d is %T", i, s)
		}
		if _, cd := s.(CDStation); cd {
			return Result{}, fmt.Errorf("sim: WithEventDriven cannot drive collision-detection station %d (%T): ternary feedback depends on slots the event engine skips", i, s)
		}
		att[i] = a
	}

	var res Result
	if cfg.deliveryOrder {
		res.DeliveryOrder = make([]int, 0, len(stations))
	}
	if len(stations) == 0 {
		return res, nil
	}

	cal := kernel.NewCalendar()
	for i, a := range att {
		after := uint64(0) // first attempt at any slot ≥ 1
		if cfg.arrivals != nil && cfg.arrivals[i] > 1 {
			// Same semantics as the per-slot path: the station's windows
			// span global slots from 1; chosen slots before its arrival
			// were never transmitted (the station held no message yet).
			after = cfg.arrivals[i] - 1
		}
		next, err := a.NextAttempt(after, src)
		if err != nil {
			return Result{}, fmt.Errorf("sim: station %d: %w", i, err)
		}
		cal.Schedule(next, int32(i))
	}

	group := make([]int32, 0, 16)
	for cal.Len() > 0 {
		var slot uint64
		slot, group = cal.PopGroup(group)
		if slot > cfg.maxSlots {
			return res, fmt.Errorf("%w (limit %d, delivered %d/%d)",
				ErrSlotLimit, cfg.maxSlots, res.Delivered, len(stations))
		}
		if len(group) == 1 {
			// Exactly one transmitter: delivery. The deliverer departs; an
			// AttemptStation ignores receptions by contract, so the other
			// stations need no notification.
			res.Successes++
			res.Delivered++
			if cfg.deliveryOrder {
				res.DeliveryOrder = append(res.DeliveryOrder, int(group[0]))
			}
			if res.Delivered == len(stations) || (cfg.stopAfter > 0 && res.Delivered >= cfg.stopAfter) {
				res.Slots = slot
				// Every unvisited slot up to completion was silent.
				res.Silences = slot - res.Successes - res.Collisions
				return res, nil
			}
			continue
		}
		// Collision: every collider reschedules into its next window.
		res.Collisions++
		for _, id := range group {
			next, err := att[id].NextAttempt(slot, src)
			if err != nil {
				return Result{}, fmt.Errorf("sim: station %d: %w", id, err)
			}
			cal.Schedule(next, id)
		}
	}
	// Unreachable for well-formed protocols: an undelivered AttemptStation
	// always has a next attempt.
	return res, fmt.Errorf("sim: event engine drained with %d/%d delivered", res.Delivered, len(stations))
}
