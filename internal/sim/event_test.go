package sim_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func ebbStations(t testing.TB, k int) []protocol.Station {
	t.Helper()
	stations := make([]protocol.Station, k)
	for i := range stations {
		sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta)
		if err != nil {
			t.Fatal(err)
		}
		stations[i] = protocol.NewWindowStation(sched)
	}
	return stations
}

// TestEventDrivenMatchesSlotBySlot is the validity check for the
// event-driven per-node path: the completion-time distribution must match
// the slot-by-slot reference (two-sample KS test at ~99.9%).
func TestEventDrivenMatchesSlotBySlot(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 3, 8, 32} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			const draws = 3000
			event := make([]float64, draws)
			exact := make([]float64, draws)
			for i := 0; i < draws; i++ {
				resE, err := sim.Run(ebbStations(t, k),
					rng.NewStream(99, "ev", fmt.Sprint(k), fmt.Sprint(i)), sim.WithEventDriven())
				if err != nil {
					t.Fatal(err)
				}
				resX, err := sim.Run(ebbStations(t, k),
					rng.NewStream(99, "ex", fmt.Sprint(k), fmt.Sprint(i)))
				if err != nil {
					t.Fatal(err)
				}
				event[i] = float64(resE.Slots)
				exact[i] = float64(resX.Slots)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(event, exact); d > crit {
				t.Errorf("KS distance %.4f > %.4f between event-driven and slot-by-slot", d, crit)
			}
		})
	}
}

// TestEventDrivenCounters: successes + collisions + silences must
// partition the slots, and deliveries must equal k.
func TestEventDrivenCounters(t *testing.T) {
	t.Parallel()
	const k = 50
	res, err := sim.Run(ebbStations(t, k), rng.New(5), sim.WithEventDriven(), sim.WithDeliveryOrder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != k || res.Successes != k {
		t.Errorf("delivered %d successes %d, want %d", res.Delivered, res.Successes, k)
	}
	if got := res.Successes + res.Collisions + res.Silences; got != res.Slots {
		t.Errorf("outcome counters sum to %d, want %d slots", got, res.Slots)
	}
	seen := map[int]bool{}
	for _, id := range res.DeliveryOrder {
		if seen[id] {
			t.Errorf("station %d delivered twice", id)
		}
		seen[id] = true
	}
	if len(seen) != k {
		t.Errorf("delivery order lists %d stations, want %d", len(seen), k)
	}
}

// TestEventDrivenArrivalsAndStopAfter: staggered arrivals and early stop
// behave like the per-slot path (distribution checked coarsely via the
// mean; the KS test above covers the static case).
func TestEventDrivenArrivalsAndStopAfter(t *testing.T) {
	t.Parallel()
	const k, draws = 16, 800
	arrivals := make([]uint64, k)
	for i := range arrivals {
		arrivals[i] = uint64(1 + 7*i)
	}
	var sumE, sumX float64
	for i := 0; i < draws; i++ {
		resE, err := sim.Run(ebbStations(t, k), rng.NewStream(31, "a", fmt.Sprint(i)),
			sim.WithEventDriven(), sim.WithArrivals(arrivals), sim.WithStopAfterDeliveries(k/2))
		if err != nil {
			t.Fatal(err)
		}
		resX, err := sim.Run(ebbStations(t, k), rng.NewStream(31, "b", fmt.Sprint(i)),
			sim.WithArrivals(arrivals), sim.WithStopAfterDeliveries(k/2))
		if err != nil {
			t.Fatal(err)
		}
		if resE.Delivered != k/2 || resX.Delivered != k/2 {
			t.Fatalf("delivered %d / %d, want %d", resE.Delivered, resX.Delivered, k/2)
		}
		sumE += float64(resE.Slots)
		sumX += float64(resX.Slots)
	}
	mE, mX := sumE/draws, sumX/draws
	if math.Abs(mE-mX) > 0.15*math.Max(mE, mX) {
		t.Errorf("mean completion %.1f (event) vs %.1f (slot-by-slot)", mE, mX)
	}
}

// TestEventDrivenRejectsIneligible: fair stations (feedback-driven) and
// slot-observing options must be refused, not silently mis-simulated.
func TestEventDrivenRejectsIneligible(t *testing.T) {
	t.Parallel()
	ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	fair := []protocol.Station{protocol.NewFairStation(ctrl)}
	if _, err := sim.Run(fair, rng.New(1), sim.WithEventDriven()); err == nil ||
		!strings.Contains(err.Error(), "AttemptStation") {
		t.Errorf("fair station: err = %v, want AttemptStation requirement", err)
	}
	if _, err := sim.Run(ebbStations(t, 2), rng.New(1), sim.WithEventDriven(),
		sim.WithTrace(func(sim.SlotRecord) {})); err == nil ||
		!strings.Contains(err.Error(), "WithTrace") {
		t.Errorf("trace: err = %v, want WithTrace incompatibility", err)
	}
	// The jammer rejection must point the caller at the supported
	// alternative: dynamic.WithJammer on the windowed event path.
	if _, err := sim.Run(ebbStations(t, 2), rng.New(1), sim.WithEventDriven(),
		sim.WithJammer(func(uint64) bool { return false })); err == nil ||
		!strings.Contains(err.Error(), "WithJammer") ||
		!strings.Contains(err.Error(), "dynamic.WithJammer") ||
		!strings.Contains(err.Error(), "RunWindowEvent") {
		t.Errorf("jammer: err = %v, want WithJammer incompatibility naming dynamic.WithJammer/RunWindowEvent", err)
	}
}

// TestEventDrivenSlotLimit: the budget error matches the per-slot path's
// error type.
func TestEventDrivenSlotLimit(t *testing.T) {
	t.Parallel()
	_, err := sim.Run(ebbStations(t, 64), rng.New(9), sim.WithEventDriven(), sim.WithMaxSlots(3))
	if !errors.Is(err, sim.ErrSlotLimit) {
		t.Errorf("err = %v, want ErrSlotLimit", err)
	}
}
