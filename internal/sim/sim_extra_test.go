package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func newOFAStations(t *testing.T, k int) []protocol.Station {
	t.Helper()
	stations := make([]protocol.Station, k)
	for i := range stations {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			t.Fatal(err)
		}
		stations[i] = protocol.NewFairStation(ctrl)
	}
	return stations
}

func TestJammerBlocksDelivery(t *testing.T) {
	t.Parallel()
	// A jammer covering every slot makes delivery impossible.
	_, err := Run(newOFAStations(t, 4), rng.New(1),
		allJammed(), WithMaxSlots(2000))
	if err == nil {
		t.Fatal("fully jammed channel completed")
	}
}

// allJammed jams every slot.
func allJammed() Option {
	return WithJammer(func(uint64) bool { return true })
}

func TestJammerOutcomeIsCollision(t *testing.T) {
	t.Parallel()
	// A single station transmitting alone in a jammed slot must collide.
	st := &scriptStation{script: map[uint64]bool{1: true, 2: true}}
	var outcomes []Outcome
	res, err := Run([]protocol.Station{st}, rng.New(1),
		WithJammer(func(slot uint64) bool { return slot == 1 }),
		WithTrace(func(r SlotRecord) { outcomes = append(outcomes, r.Outcome) }))
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0] != Collision {
		t.Fatalf("jammed slot outcome = %v, want collision", outcomes[0])
	}
	if res.Slots != 2 {
		t.Fatalf("completion at %d, want 2 (slot 1 was jammed)", res.Slots)
	}
}

// TestOFASurvivesPartialJamming is the failure-injection experiment: with
// 30% of slots jammed, One-Fail Adaptive still completes, paying roughly
// the proportional slowdown.
func TestOFASurvivesPartialJamming(t *testing.T) {
	t.Parallel()
	const k = 200
	jam := rng.New(99)
	clean, err := Run(newOFAStations(t, k), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	jammed, err := Run(newOFAStations(t, k), rng.New(7),
		WithJammer(func(uint64) bool { return jam.Bernoulli(0.3) }))
	if err != nil {
		t.Fatal(err)
	}
	if jammed.Slots <= clean.Slots {
		t.Fatalf("jammed run (%d) not slower than clean run (%d)", jammed.Slots, clean.Slots)
	}
	// The slowdown should be bounded: well under 4x for 30% jamming.
	if float64(jammed.Slots) > 4*float64(clean.Slots) {
		t.Fatalf("jammed run %d slots vs clean %d — more than 4x degradation", jammed.Slots, clean.Slots)
	}
}

func TestStopAfterDeliveries(t *testing.T) {
	t.Parallel()
	const k = 50
	res, err := Run(newOFAStations(t, k), rng.New(3), WithStopAfterDeliveries(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 {
		t.Fatalf("delivered %d, want exactly 5", res.Delivered)
	}
	full, err := Run(newOFAStations(t, k), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots >= full.Slots {
		t.Fatalf("first-5 stop (%d) not earlier than full run (%d)", res.Slots, full.Slots)
	}
}

// TestTimeToFirstDelivery measures the §2 quantity behind the
// Kushilevitz–Mansour Ω(log n) lower bound: without collision detection,
// even the first delivery takes logarithmic time for some k. For OFA the
// mean first-delivery slot must grow (slowly) with k but stay far below
// completion time.
func TestTimeToFirstDelivery(t *testing.T) {
	t.Parallel()
	mean := func(k int) float64 {
		const runs = 60
		var total uint64
		for i := 0; i < runs; i++ {
			res, err := Run(newOFAStations(t, k), rng.NewStream(11, "first", string(rune(k)), string(rune(i))),
				WithStopAfterDeliveries(1))
			if err != nil {
				t.Fatal(err)
			}
			total += res.Slots
		}
		return float64(total) / runs
	}
	small, large := mean(4), mean(512)
	if large <= small {
		t.Fatalf("first delivery at k=512 (%v) not slower than k=4 (%v)", large, small)
	}
	if large > 40*math.Log2(512) {
		t.Fatalf("first delivery at k=512 = %v slots, implausibly slow", large)
	}
}
