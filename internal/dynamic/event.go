package dynamic

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// This file implements the event-driven fast path for windowed
// (back-on/back-off) protocols under dynamic arrivals.
//
// Windowed stations are oblivious to the channel: protocol.WindowStation
// ignores all feedback, and a station leaves only when its own
// transmission succeeds. Each station's transmission slots therefore form
// an independent stochastic process — one uniformly chosen slot per
// window of its private schedule — and the channel matters only at slots
// where at least one station transmits. Instead of driving every active
// station through every slot (O(active) per slot, as internal/sim does),
// the engine keeps every station's next transmission slot in a
// kernel.Calendar timing wheel and jumps from occupied slot to occupied
// slot in amortized O(1) per event. Silent slots are never visited, which
// is what makes million-message Poisson workloads feasible.
//
// The jump is exact in distribution: a success happens exactly when a
// popped slot carries one transmitter, a collision reschedules each
// collider into its next window, and no other information flows between
// stations. Statistical agreement with the per-node simulator is enforced
// by Kolmogorov–Smirnov tests in event_test.go, mirroring how
// internal/engine validates its aggregate engines.

// windowCursor tracks one station's position in its private window
// schedule, in global slot coordinates.
type windowCursor struct {
	sched protocol.Schedule
	// windowEnd is the last slot of the most recently drawn window (0
	// before the first draw).
	windowEnd uint64
}

// advance draws the next window and returns the station's uniformly
// chosen transmission slot within it, via the same protocol.DrawWindow
// primitive WindowStation uses.
func (c *windowCursor) advance(src *rng.Rand) (uint64, error) {
	end, chosen, err := protocol.DrawWindow(c.sched, c.windowEnd, src)
	if err != nil {
		return 0, err
	}
	c.windowEnd = end
	return chosen, nil
}

// RunWindowEvent executes a dynamic workload under a windowed protocol on
// the event-driven engine; newSched builds one private schedule per
// station. It accepts the same options and produces results distributed
// identically to RunWindow, but costs amortized O(1) per transmission
// event instead of O(active) per slot, scaling dynamic workloads to
// millions of messages.
func RunWindowEvent(w Workload, newSched func() (protocol.Schedule, error), src *rng.Rand, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	n := w.N()
	var res Result
	if n == 0 {
		res.Completed = true
		return res, nil
	}

	// Seed every station's first transmission. As in the per-node
	// simulator, a station on the local clock opens its first window at
	// its arrival slot; on the global clock it fast-forwards through the
	// windows that elapsed before its arrival and misses a chosen slot
	// already in the past.
	cursors := make([]windowCursor, n)
	cal := kernel.NewCalendar()
	for i := 0; i < n; i++ {
		sched, err := newSched()
		if err != nil {
			return Result{}, err
		}
		arrival := w.Arrivals[i]
		if arrival < 1 {
			arrival = 1
		}
		c := &cursors[i]
		c.sched = sched
		var next uint64
		if cfg.clock == ClockLocal {
			c.windowEnd = arrival - 1
			next, err = c.advance(src)
		} else {
			for {
				next, err = c.advance(src)
				if err != nil || (c.windowEnd >= arrival && next >= arrival) {
					break
				}
			}
		}
		if err != nil {
			return Result{}, err
		}
		cal.Schedule(next, int32(i))
	}

	// Backlog bookkeeping: the backlog changes only at arrivals and
	// deliveries, so its maximum is reached right after admitting every
	// arrival up to the current event slot.
	sorted := make([]uint64, n)
	copy(sorted, w.Arrivals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	arrived, departed := 0, 0
	admit := func(upTo uint64) {
		for arrived < n && sorted[arrived] <= upTo {
			arrived++
			// Departures only shrink the backlog between admits, so each
			// new maximum is reached exactly at the admitted arrival.
			if b := arrived - departed; b > res.MaxBacklog {
				res.MaxBacklog = b
				res.PeakBacklogSlot = sorted[arrived-1]
			}
		}
	}

	group := make([]int32, 0, 16)
	for events := 0; cal.Len() > 0; events++ {
		// Cancellation check off the hot path: every 256 events is prompt
		// for interactive teardown yet invisible in the pinned benchmarks.
		if cfg.ctx != nil && events&255 == 0 {
			if err := cfg.ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		var slot uint64
		slot, group = cal.PopGroup(group)
		if slot > cfg.maxSlots {
			// Budget exhausted: report partial results, as RunWindow does.
			admit(cfg.maxSlots)
			res.Completion = 0
			return res, nil
		}
		admit(slot)
		// A jammed slot destroys even a lone transmission (adversarial
		// noise); the transmitters perceive a collision and reschedule.
		// Jammed slots nobody occupies are never visited, which is sound:
		// windowed stations are oblivious to feedback they don't cause.
		if len(group) == 1 && !(cfg.jammed != nil && cfg.jammed(slot)) {
			id := group[0]
			res.Delivered++
			departed++
			res.Completion = slot
			res.Latency.Add(float64(slot - w.Arrivals[id] + 1))
			continue
		}
		res.Collisions++
		for _, id := range group {
			next, err := cursors[id].advance(src)
			if err != nil {
				return Result{}, err
			}
			cal.Schedule(next, id)
		}
	}
	res.Completed = true
	return res, nil
}
