package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestEventEngineMatchesExact is the central validity check for the
// event-driven engine: on a shared dynamic workload, its completion-time
// distribution must match the per-node simulator's (two-sample KS test at
// ~99.9%), for both clock modes and for Poisson and bursty arrivals.
func TestEventEngineMatchesExact(t *testing.T) {
	t.Parallel()
	poisson, err := PoissonArrivals(32, 0.2, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := BurstArrivals(3, 12, 80)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		w     Workload
		clock Clock
	}{
		{name: "poisson-local", w: poisson, clock: ClockLocal},
		{name: "poisson-global", w: poisson, clock: ClockGlobal},
		{name: "bursts-local", w: bursts, clock: ClockLocal},
		{name: "bursts-global", w: bursts, clock: ClockGlobal},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const draws = 1500
			event := make([]float64, draws)
			exact := make([]float64, draws)
			for i := 0; i < draws; i++ {
				re, err := RunWindowEvent(tc.w, newEBBSched,
					rng.NewStream(42, "event", tc.name, fmt.Sprint(i)), WithClock(tc.clock))
				if err != nil {
					t.Fatal(err)
				}
				if !re.Completed {
					t.Fatalf("draw %d: event engine incomplete (%d/%d)", i, re.Delivered, tc.w.N())
				}
				event[i] = float64(re.Completion)
				rx, err := RunWindow(tc.w, newEBBSched,
					rng.NewStream(42, "exact", tc.name, fmt.Sprint(i)), WithClock(tc.clock))
				if err != nil {
					t.Fatal(err)
				}
				if !rx.Completed {
					t.Fatalf("draw %d: per-node simulator incomplete (%d/%d)", i, rx.Delivered, tc.w.N())
				}
				exact[i] = float64(rx.Completion)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(event, exact); d > crit {
				t.Fatalf("event vs exact completion time: KS distance %v > %v", d, crit)
			}
		})
	}
}

// TestEventEngineLatencyMatchesExact extends the agreement check to the
// per-message latency distribution, pooled across executions.
func TestEventEngineLatencyMatchesExact(t *testing.T) {
	t.Parallel()
	w, err := PoissonArrivals(24, 0.15, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 600
	var event, exact []float64
	for i := 0; i < draws; i++ {
		re, err := RunWindowEvent(w, newEBBSched, rng.NewStream(44, "event", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		rx, err := RunWindow(w, newEBBSched, rng.NewStream(44, "exact", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0.0; q <= 1.0; q += 0.25 {
			event = append(event, re.Latency.Quantile(q))
			exact = append(exact, rx.Latency.Quantile(q))
		}
	}
	crit := 1.95 * math.Sqrt(2.0/float64(len(event))) * 2 // quantiles are correlated; loosen
	if d := stats.KSDistance(event, exact); d > crit {
		t.Fatalf("event vs exact latency quantiles: KS distance %v > %v", d, crit)
	}
}

// TestEventEngineBatchInvariants: on the paper's static batch the event
// engine must reproduce the defining invariants of a complete execution.
func TestEventEngineBatchInvariants(t *testing.T) {
	t.Parallel()
	const k = 200
	res, err := RunWindowEvent(Batch(k), newEBBSched, rng.New(45))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Delivered != k {
		t.Fatalf("batch incomplete: %+v", res)
	}
	if res.MaxBacklog != k {
		t.Fatalf("max backlog = %d, want %d", res.MaxBacklog, k)
	}
	if res.Latency.N() != k {
		t.Fatalf("latencies recorded = %d, want %d", res.Latency.N(), k)
	}
	if uint64(res.Latency.Max()) != res.Completion {
		t.Fatalf("completion %d inconsistent with max latency %v", res.Completion, res.Latency.Max())
	}
}

// TestEventEngineDeterministic: identical (workload, seed) must reproduce
// the identical result.
func TestEventEngineDeterministic(t *testing.T) {
	t.Parallel()
	w, err := PoissonArrivals(500, 0.3, rng.New(46))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunWindowEvent(w, newEBBSched, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWindowEvent(w, newEBBSched, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds gave different results:\n%+v\n%+v", a, b)
	}
}

// TestEventEngineEmptyAndErrors covers the degenerate paths: empty
// workloads, schedule constructor failures, and schedules that return
// windows < 1.
func TestEventEngineEmptyAndErrors(t *testing.T) {
	t.Parallel()
	res, err := RunWindowEvent(Workload{}, newEBBSched, rng.New(1))
	if err != nil || !res.Completed {
		t.Fatalf("empty workload: %+v, %v", res, err)
	}
	boom := fmt.Errorf("boom")
	if _, err := RunWindowEvent(Batch(2), func() (protocol.Schedule, error) { return nil, boom }, rng.New(1)); err != boom {
		t.Fatalf("constructor error not propagated: %v", err)
	}
	if _, err := RunWindowEvent(Batch(2), func() (protocol.Schedule, error) { return badSchedule{}, nil }, rng.New(1)); err == nil {
		t.Fatal("schedule returning window 0 accepted, want error")
	}
}

type badSchedule struct{}

func (badSchedule) NextWindow() int { return 0 }

// TestEventEngineSlotBudget: two stations on a fixed window of 1 collide
// forever; the engine must stop at the budget and report the partial
// result exactly as RunWindow does.
func TestEventEngineSlotBudget(t *testing.T) {
	t.Parallel()
	newFixed := func() (protocol.Schedule, error) { return baseline.NewFixedWindow(1) }
	res, err := RunWindowEvent(Batch(2), newFixed, rng.New(1), WithMaxSlots(5000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Delivered != 0 || res.Completion != 0 {
		t.Fatalf("livelocked run reported %+v", res)
	}
	if res.Collisions != 5000 {
		t.Fatalf("collisions = %d, want 5000 (one per budgeted slot)", res.Collisions)
	}
	if res.MaxBacklog != 2 {
		t.Fatalf("max backlog = %d, want 2", res.MaxBacklog)
	}
}

// TestEventEngineLateGlobalArrival mirrors TestGlobalClockWindowFastForward
// on the event engine: a station arriving long after slot 1 on the global
// clock must fast-forward its schedule and still deliver at or after its
// arrival.
func TestEventEngineLateGlobalArrival(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 50; seed++ {
		res, err := RunWindowEvent(Workload{Arrivals: []uint64{1000}}, newEBBSched,
			rng.New(seed), WithClock(ClockGlobal), WithMaxSlots(100000))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("late global arrival never delivered")
		}
		if res.Completion < 1000 {
			t.Fatalf("completion %d before arrival slot 1000", res.Completion)
		}
	}
}

// TestEventEngineMillionMessages is the scale gate of this subsystem: a
// Poisson workload of 10⁶ messages must complete on the event engine. The
// per-node simulator would need ~10⁶ station updates per slot over
// millions of slots; the event engine visits only occupied slots.
func TestEventEngineMillionMessages(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("million-message workload skipped in -short mode")
	}
	// λ = 0.1 is inside Exp Back-on/Back-off's stable region (its dynamic
	// saturation point is between 0.1 and 0.2; see internal/throughput),
	// so the run must sustain the offered load end to end.
	const n, lambda = 1_000_000, 0.1
	w, err := PoissonArrivals(n, lambda, rng.New(48))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWindowEvent(w, newEBBSched, rng.New(49))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Delivered != n {
		t.Fatalf("incomplete: %d/%d delivered", res.Delivered, n)
	}
	throughput := float64(n) / float64(res.Completion)
	if throughput < 0.95*lambda {
		t.Fatalf("sustained throughput %.3f msgs/slot at offered load %v", throughput, lambda)
	}
}

// TestRunWindowEventContextCancel: WithContext makes an unbounded run
// cancelable mid-flight — the engine must return ctx.Err() promptly
// instead of simulating out its slot budget. The CI race job runs this
// package with -race, so the goroutine handoff here is race-checked.
func TestRunWindowEventContextCancel(t *testing.T) {
	t.Parallel()
	// A fully jammed channel on a fixed window never delivers: every
	// event is a collision that reschedules into the next window, so
	// events stay dense and the run only ends at the (enormous) slot
	// budget. Without cancellation this would spin for years.
	newFixed := func() (protocol.Schedule, error) { return baseline.NewFixedWindow(64) }
	always := func(uint64) bool { return true }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunWindowEvent(Batch(64), newFixed, rng.New(50),
			WithJammer(always), WithMaxSlots(1<<62), WithContext(ctx))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunWindowEvent did not return after cancellation")
	}

	// A context canceled before the run starts must stop it at the very
	// first check, before any event is simulated.
	if _, err := RunWindowEvent(Batch(64), newFixed, rng.New(51),
		WithJammer(always), WithMaxSlots(1<<62), WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}
}
