package dynamic

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// jamFirst returns a pure mask that jams every slot up to and including
// n.
func jamFirst(n uint64) func(uint64) bool {
	return func(slot uint64) bool { return slot <= n }
}

// TestJammerDelaysCompletion: with the opening of the channel jammed, no
// delivery can precede the mask's end, on either windowed engine.
func TestJammerDelaysCompletion(t *testing.T) {
	t.Parallel()
	w := Batch(4)
	const quiet = 200
	for name, run := range map[string]func() (Result, error){
		"event": func() (Result, error) {
			return RunWindowEvent(w, newEBBSched, rng.New(7), WithJammer(jamFirst(quiet)))
		},
		"exact": func() (Result, error) {
			return RunWindow(w, newEBBSched, rng.New(7), WithJammer(jamFirst(quiet)))
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete under a finite jam window", name)
		}
		if res.Completion <= quiet {
			t.Fatalf("%s: completed at slot %d inside the jammed window", name, res.Completion)
		}
		if res.Latency.Min() <= quiet {
			t.Fatalf("%s: a delivery at latency %v beat the jammer", name, res.Latency.Min())
		}
	}
}

// TestJammerEventMatchesExact extends the engines' distributional
// agreement to an impaired channel: under a shared periodic jam mask the
// completion-time distributions must still match (two-sample KS test).
func TestJammerEventMatchesExact(t *testing.T) {
	t.Parallel()
	w, err := PoissonArrivals(24, 0.15, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	mask := func(slot uint64) bool { return (slot-1)%7 < 2 }
	const draws = 1200
	event := make([]float64, draws)
	exact := make([]float64, draws)
	eventCol := make([]float64, draws)
	exactCol := make([]float64, draws)
	for i := 0; i < draws; i++ {
		re, err := RunWindowEvent(w, newEBBSched, rng.NewStream(52, "event", fmt.Sprint(i)), WithJammer(mask))
		if err != nil {
			t.Fatal(err)
		}
		rx, err := RunWindow(w, newEBBSched, rng.NewStream(52, "exact", fmt.Sprint(i)), WithJammer(mask))
		if err != nil {
			t.Fatal(err)
		}
		if !re.Completed || !rx.Completed {
			t.Fatalf("draw %d incomplete (event %v, exact %v)", i, re.Completed, rx.Completed)
		}
		event[i] = float64(re.Completion)
		exact[i] = float64(rx.Completion)
		eventCol[i] = float64(re.Collisions)
		exactCol[i] = float64(rx.Collisions)
	}
	crit := 1.95 * math.Sqrt(2.0/draws)
	if d := stats.KSDistance(event, exact); d > crit {
		t.Fatalf("jammed event vs exact completion time: KS distance %v > %v", d, crit)
	}
	// Collision accounting must agree too: both engines count lost
	// transmissions, not the simulator's omniscient view of empty jammed
	// slots.
	if d := stats.KSDistance(eventCol, exactCol); d > crit {
		t.Fatalf("jammed event vs exact collisions: KS distance %v > %v", d, crit)
	}
}

// TestJammerStarvesChannel: a fully jammed channel delivers nothing and
// reports the budget exhaustion rather than spinning.
func TestJammerStarvesChannel(t *testing.T) {
	t.Parallel()
	always := func(uint64) bool { return true }
	for name, run := range map[string]func() (Result, error){
		"event": func() (Result, error) {
			return RunWindowEvent(Batch(3), newEBBSched, rng.New(9), WithJammer(always), WithMaxSlots(5000))
		},
		"exact": func() (Result, error) {
			return RunWindow(Batch(3), newEBBSched, rng.New(9), WithJammer(always), WithMaxSlots(5000))
		},
		"fair": func() (Result, error) {
			return RunFair(Batch(3), newOFACtrl, rng.New(9), WithJammer(always), WithMaxSlots(5000))
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Completed || res.Delivered != 0 {
			t.Fatalf("%s: delivered %d through a fully jammed channel", name, res.Delivered)
		}
	}
}

// TestRunMixed drives a heterogeneous population — half windowed
// back-off stations, half fair One-Fail Adaptive stations on a global
// clock — through one batch and checks it drains.
func TestRunMixed(t *testing.T) {
	t.Parallel()
	const n = 40
	build := func(i int) (protocol.Station, error) {
		if i%2 == 0 {
			sched, err := baseline.NewExponentialBackoff(2)
			if err != nil {
				return nil, err
			}
			return protocol.NewWindowStation(sched), nil
		}
		ctrl, err := newOFACtrl()
		if err != nil {
			return nil, err
		}
		return protocol.NewFairStation(ctrl), nil
	}
	res, err := RunMixed(Batch(n), build, rng.New(13), WithClock(ClockGlobal), WithMaxSlots(200_000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Delivered != n {
		t.Fatalf("mixed batch incomplete: %d/%d in %d slots", res.Delivered, n, res.Completion)
	}
	if res.MaxBacklog != n {
		t.Fatalf("max backlog %d, want %d", res.MaxBacklog, n)
	}
	// Constructor errors surface.
	bad := func(int) (protocol.Station, error) { return nil, fmt.Errorf("boom") }
	if _, err := RunMixed(Batch(2), bad, rng.New(1)); err == nil {
		t.Fatal("constructor error swallowed")
	}
}

// TestPeakBacklogSlot: the peak is reached at the last arrival that
// pushes the backlog to its maximum, on both engines.
func TestPeakBacklogSlot(t *testing.T) {
	t.Parallel()
	// A batch peaks at slot 1.
	res, err := RunWindowEvent(Batch(16), newEBBSched, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBacklogSlot != 1 || res.MaxBacklog != 16 {
		t.Fatalf("batch peak = (%d, %d), want (16, 1)", res.MaxBacklog, res.PeakBacklogSlot)
	}
	rx, err := RunWindow(Batch(16), newEBBSched, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if rx.PeakBacklogSlot != 1 {
		t.Fatalf("exact engine batch peak slot = %d, want 1", rx.PeakBacklogSlot)
	}
	// Two bursts far apart: the backlog cannot exceed one burst (the
	// first has long drained), so the peak is at the first burst's slot.
	w, err := BurstArrivals(2, 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunWindowEvent(w, newEBBSched, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBacklog != 8 || res.PeakBacklogSlot != 1 {
		t.Fatalf("spread bursts peak = (%d, %d), want (8, 1)", res.MaxBacklog, res.PeakBacklogSlot)
	}
}
