// Package dynamic explores the paper's stated future work (§6): the
// dynamic version of k-selection where messages arrive over time rather
// than in a single batch, under statistical (Poisson) or adversarial
// (bursty) arrivals.
//
// The paper's protocols are specified for batched arrivals; two dynamic
// deployments are explored here, selected by Clock:
//
//   - ClockLocal (default): each station runs its protocol on a local
//     clock started at its own message arrival ("upon message arrival
//     do …" in Algorithm 1). Stations are unsynchronized. This exposes a
//     genuine hazard of One-Fail Adaptive outside its batched model: its
//     BT-step transmits with probability 1 while σ = 0, so once both
//     arrival-parity classes hold two or more fresh stations, every slot
//     carries two guaranteed transmitters and the channel livelocks
//     (Result.Completed reports this).
//
//   - ClockGlobal: stations share the channel's global slot numbering
//     (as in a TDMA deployment), which keeps the AT/BT step parity
//     network-wide and avoids the cross-parity livelock.
//
// Stations are no longer state-synchronized either way, so the adaptive
// (fair) protocols run on the exact per-node simulator and are meant for
// moderate sizes. Windowed (back-off) protocols are oblivious to the
// channel between their own transmissions, which admits an event-driven
// fast path (RunWindowEvent): transmissions are scheduled into a min-heap
// keyed by slot and the engine jumps between occupied slots in O(log n)
// per event, scaling dynamic workloads to millions of messages while
// remaining exact in distribution (see event.go).
package dynamic

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Clock selects how a station maps channel slots to protocol steps.
type Clock uint8

// Clock modes.
const (
	// ClockLocal starts each station's step counter at its own arrival.
	ClockLocal Clock = iota
	// ClockGlobal uses the channel's slot number as every station's step
	// counter.
	ClockGlobal
)

// Workload is a dynamic arrival pattern: Arrivals[i] is the slot (1-based)
// at which message i arrives at its station.
type Workload struct {
	Arrivals []uint64
}

// N returns the number of messages.
func (w Workload) N() int { return len(w.Arrivals) }

// Span returns the last arrival slot (0 for an empty workload).
func (w Workload) Span() uint64 {
	var max uint64
	for _, a := range w.Arrivals {
		if a > max {
			max = a
		}
	}
	return max
}

// DrainBudget returns the standard slot budget for draining the
// workload: its arrival span plus 64 slots per message plus fixed
// slack — enough for any stable protocol to finish while terminating
// saturated runs. The throughput sweep and the adaptive adversary's
// pilot executions share this heuristic.
func (w Workload) DrainBudget() uint64 {
	return w.Span() + 64*uint64(w.N()) + 10_000
}

// Batch returns the paper's static workload: n messages all arriving at
// slot 1.
func Batch(n int) Workload {
	arrivals := make([]uint64, n)
	for i := range arrivals {
		arrivals[i] = 1
	}
	return Workload{Arrivals: arrivals}
}

// PoissonArrivals returns n messages whose arrival slots follow a Poisson
// process with the given expected arrivals per slot (rate > 0).
func PoissonArrivals(n int, rate float64, src *rng.Rand) (Workload, error) {
	if rate <= 0 {
		return Workload{}, fmt.Errorf("dynamic: Poisson rate must be > 0, got %v", rate)
	}
	arrivals := make([]uint64, n)
	t := 0.0
	for i := range arrivals {
		t += src.ExpFloat64() / rate
		slot := uint64(t) + 1
		arrivals[i] = slot
	}
	return Workload{Arrivals: arrivals}, nil
}

// BurstArrivals returns an adversarial bursty workload: bursts batches of
// size messages each, with consecutive batches gap slots apart (the
// worst-case pattern §1 cites as frequent in practice). The pattern is
// deterministic; gap must be ≥ 1.
func BurstArrivals(bursts, size int, gap uint64) (Workload, error) {
	if bursts < 1 || size < 1 {
		return Workload{}, fmt.Errorf("dynamic: bursts and size must be ≥ 1, got %d, %d", bursts, size)
	}
	if gap == 0 {
		return Workload{}, fmt.Errorf("dynamic: burst gap must be ≥ 1, got 0")
	}
	arrivals := make([]uint64, 0, bursts*size)
	slot := uint64(1)
	for b := 0; b < bursts; b++ {
		for i := 0; i < size; i++ {
			arrivals = append(arrivals, slot)
		}
		slot += gap
	}
	return Workload{Arrivals: arrivals}, nil
}

// localClockStation runs an inner station on a clock that starts at the
// station's own arrival slot, so "communication-step 1" is its first
// active slot, preserving the protocol's AT/BT step parity per node.
type localClockStation struct {
	inner   protocol.Station
	arrival uint64
}

// WillTransmit implements protocol.Station.
func (s *localClockStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	return s.inner.WillTransmit(slot-s.arrival+1, src)
}

// Feedback implements protocol.Station.
func (s *localClockStation) Feedback(slot uint64, transmitted, received bool) {
	s.inner.Feedback(slot-s.arrival+1, transmitted, received)
}

var _ protocol.Station = (*localClockStation)(nil)

// Result summarizes a dynamic execution.
type Result struct {
	// Completed reports whether every message was delivered within the
	// slot budget. It is false when the execution livelocked (see the
	// package comment) or simply ran out of budget.
	Completed bool
	// Delivered is the number of messages delivered.
	Delivered int
	// Completion is the slot at which the last message was delivered
	// (0 if not Completed).
	Completion uint64
	// Latency summarizes per-message delivery latency in slots
	// (delivery slot − arrival slot + 1; a message delivered on its
	// arrival slot has latency 1). Partial on incomplete executions.
	Latency stats.Summary
	// MaxBacklog is the largest number of simultaneously active stations.
	MaxBacklog int
	// PeakBacklogSlot is the slot at which MaxBacklog was first reached
	// (0 for an empty workload). Adaptive adversaries in
	// internal/scenario read it off pilot executions.
	PeakBacklogSlot uint64
	// Collisions counts slots on which at least one transmission was
	// lost: two or more stations transmitted, or a lone transmission was
	// destroyed by a jammer. Jammed slots nobody occupied are not
	// counted (the event engine never visits them).
	Collisions uint64
}

// config carries run options.
type config struct {
	clock    Clock
	maxSlots uint64
	jammed   func(slot uint64) bool
	ctx      context.Context
}

// Option configures RunFair and RunWindow.
type Option func(*config)

// WithClock selects the station clock mode (default ClockLocal).
func WithClock(c Clock) Option {
	return func(cfg *config) { cfg.clock = c }
}

// WithMaxSlots caps the execution length; incomplete executions are
// reported via Result.Completed rather than an error. The default is
// 20 million slots.
func WithMaxSlots(n uint64) Option {
	return func(cfg *config) { cfg.maxSlots = n }
}

// WithJammer injects channel impairment: any slot for which jammed
// returns true carries adversarial noise, so even a lone transmitter
// collides and delivers nothing. The predicate must be pure (same slot,
// same answer) — the event-driven engine visits only occupied slots, the
// per-node simulator visits all of them, and both must see the same
// mask. A nil predicate leaves the channel clean.
func WithJammer(jammed func(slot uint64) bool) Option {
	return func(cfg *config) { cfg.jammed = jammed }
}

// WithContext makes the run cancelable: RunWindowEvent checks ctx
// periodically (every few hundred events, so the check stays off the
// hot path) and returns ctx.Err() mid-run instead of simulating to
// completion. Long-running consumers — internal/session lives on this
// engine — need teardown that does not wait out a 20-million-slot
// budget. A nil or background context disables the checks.
func WithContext(ctx context.Context) Option {
	return func(cfg *config) { cfg.ctx = ctx }
}

// wrap applies the configured clock to a station with the given arrival.
func (cfg *config) wrap(st protocol.Station, arrival uint64) protocol.Station {
	if cfg.clock == ClockGlobal {
		return st
	}
	return &localClockStation{inner: st, arrival: arrival}
}

// RunFair executes a dynamic workload under a fair protocol; newCtrl
// builds one private controller per station.
func RunFair(w Workload, newCtrl func() (protocol.Controller, error), src *rng.Rand, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	stations := make([]protocol.Station, w.N())
	for i := range stations {
		ctrl, err := newCtrl()
		if err != nil {
			return Result{}, err
		}
		stations[i] = cfg.wrap(protocol.NewFairStation(ctrl), w.Arrivals[i])
	}
	return run(w, stations, src, cfg)
}

// RunWindow executes a dynamic workload under a windowed protocol;
// newSched builds one private schedule per station.
func RunWindow(w Workload, newSched func() (protocol.Schedule, error), src *rng.Rand, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	stations := make([]protocol.Station, w.N())
	for i := range stations {
		sched, err := newSched()
		if err != nil {
			return Result{}, err
		}
		stations[i] = cfg.wrap(protocol.NewWindowStation(sched), w.Arrivals[i])
	}
	return run(w, stations, src, cfg)
}

// RunMixed executes a dynamic workload over a heterogeneous station
// population: newStation builds the station carrying message i, so
// windowed and fair stations can share one channel (the mixed-population
// scenarios of internal/scenario). Heterogeneous runs use the exact
// per-node simulator — no aggregate shortcut applies when station kinds
// differ — and are practical at moderate sizes.
func RunMixed(w Workload, newStation func(i int) (protocol.Station, error), src *rng.Rand, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	stations := make([]protocol.Station, w.N())
	for i := range stations {
		st, err := newStation(i)
		if err != nil {
			return Result{}, err
		}
		stations[i] = cfg.wrap(st, w.Arrivals[i])
	}
	return run(w, stations, src, cfg)
}

func newConfig(opts []Option) *config {
	cfg := &config{maxSlots: 20_000_000}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

func run(w Workload, stations []protocol.Station, src *rng.Rand, cfg *config) (Result, error) {
	var res Result
	simOpts := []sim.Option{
		sim.WithArrivals(w.Arrivals),
		sim.WithMaxSlots(cfg.maxSlots),
		sim.WithTrace(func(r sim.SlotRecord) {
			if r.Active > res.MaxBacklog {
				res.MaxBacklog = r.Active
				res.PeakBacklogSlot = r.Slot
			}
			// Count slots on which at least one transmission was lost: a
			// genuine collision, or any transmission destroyed by the
			// jammer. Empty jammed slots are excluded — the simulator's
			// omniscient view calls them collisions, but the event engine
			// never visits them, and the two engines must agree.
			if r.Outcome == sim.Collision && (r.Transmitters > 1 ||
				(r.Transmitters == 1 && cfg.jammed != nil && cfg.jammed(r.Slot))) {
				res.Collisions++
			}
			if r.Outcome == sim.Success {
				res.Latency.Add(float64(r.Slot - w.Arrivals[r.Deliverer] + 1))
			}
		}),
	}
	if cfg.jammed != nil {
		simOpts = append(simOpts, sim.WithJammer(cfg.jammed))
	}
	simRes, err := sim.Run(stations, src, simOpts...)
	res.Delivered = simRes.Delivered
	switch {
	case err == nil:
		res.Completed = true
		res.Completion = simRes.Slots
	case errors.Is(err, sim.ErrSlotLimit):
		// Livelock or budget exhaustion: report partial results.
	default:
		return Result{}, err
	}
	return res, nil
}
