package dynamic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func newOFACtrl() (protocol.Controller, error) {
	return core.NewOneFailAdaptive(core.DefaultOFADelta)
}

func newEBBSched() (protocol.Schedule, error) {
	return core.NewExpBackonBackoff(core.DefaultEBBDelta)
}

func TestBatchWorkload(t *testing.T) {
	t.Parallel()
	w := Batch(5)
	if w.N() != 5 || w.Span() != 1 {
		t.Fatalf("Batch(5) = %+v, want 5 messages at slot 1", w)
	}
}

func TestPoissonArrivalsShape(t *testing.T) {
	t.Parallel()
	if _, err := PoissonArrivals(10, 0, rng.New(1)); err == nil {
		t.Fatal("rate 0 accepted, want error")
	}
	const n, rate = 2000, 0.25
	w, err := PoissonArrivals(n, rate, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != n {
		t.Fatalf("n = %d, want %d", w.N(), n)
	}
	// Arrival slots must be non-decreasing and start at ≥ 1.
	for i := 1; i < n; i++ {
		if w.Arrivals[i] < w.Arrivals[i-1] {
			t.Fatalf("arrivals not sorted at %d: %d < %d", i, w.Arrivals[i], w.Arrivals[i-1])
		}
	}
	if w.Arrivals[0] < 1 {
		t.Fatalf("first arrival %d < 1", w.Arrivals[0])
	}
	// The span should be about n/rate slots.
	want := float64(n) / rate
	if got := float64(w.Span()); math.Abs(got-want) > want/4 {
		t.Fatalf("span = %v, want ~%v", got, want)
	}
}

func TestBurstArrivals(t *testing.T) {
	t.Parallel()
	if _, err := BurstArrivals(0, 5, 10); err == nil {
		t.Fatal("0 bursts accepted, want error")
	}
	if _, err := BurstArrivals(3, 0, 10); err == nil {
		t.Fatal("0 size accepted, want error")
	}
	if _, err := BurstArrivals(3, 5, 0); err == nil {
		t.Fatal("0 gap accepted, want error")
	}
	w, err := BurstArrivals(3, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 12 {
		t.Fatalf("n = %d, want 12", w.N())
	}
	if w.Arrivals[0] != 1 || w.Arrivals[4] != 101 || w.Arrivals[8] != 201 {
		t.Fatalf("burst boundaries wrong: %v", w.Arrivals)
	}
	// Every burst must hold exactly size copies of the same slot, bursts
	// exactly gap apart.
	for b := 0; b < 3; b++ {
		want := uint64(1 + b*100)
		for i := 0; i < 4; i++ {
			if got := w.Arrivals[b*4+i]; got != want {
				t.Fatalf("burst %d message %d arrives at %d, want %d", b, i, got, want)
			}
		}
	}
	if w.Span() != 201 {
		t.Fatalf("span = %d, want 201", w.Span())
	}
}

func TestPoissonArrivalsErrors(t *testing.T) {
	t.Parallel()
	if _, err := PoissonArrivals(10, -0.5, rng.New(1)); err == nil {
		t.Fatal("negative rate accepted, want error")
	}
	w, err := PoissonArrivals(0, 0.5, rng.New(1))
	if err != nil || w.N() != 0 || w.Span() != 0 {
		t.Fatalf("empty workload: %+v, %v", w, err)
	}
}

func TestPoissonArrivalsMeanGap(t *testing.T) {
	t.Parallel()
	// The mean inter-arrival gap must be ≈ 1/rate.
	const n, rate = 5000, 0.2
	w, err := PoissonArrivals(n, rate, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(w.Span()) / n
	want := 1 / rate
	if math.Abs(got-want) > want/5 {
		t.Fatalf("mean gap = %v, want ~%v", got, want)
	}
}

func TestRunFairBatchMatchesStatic(t *testing.T) {
	t.Parallel()
	// A batch workload under RunFair is exactly the static problem; OFA
	// must complete with sane latency stats.
	res, err := RunFair(Batch(50), newOFACtrl, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != 50 {
		t.Fatalf("latencies recorded = %d, want 50", res.Latency.N())
	}
	if res.MaxBacklog != 50 {
		t.Fatalf("max backlog = %d, want 50", res.MaxBacklog)
	}
	if res.Completion == 0 || uint64(res.Latency.Max()) != res.Completion {
		t.Fatalf("completion %d inconsistent with max latency %v", res.Completion, res.Latency.Max())
	}
}

func TestRunWindowBatch(t *testing.T) {
	t.Parallel()
	res, err := RunWindow(Batch(50), newEBBSched, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != 50 || res.Completion == 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestRunFairPoissonBacklogStaysLow(t *testing.T) {
	t.Parallel()
	// At a gentle arrival rate, the protocol keeps the backlog far below
	// the total number of messages (stability in the dynamic setting).
	const n = 400
	w, err := PoissonArrivals(n, 0.05, rng.New(5)) // one message every 20 slots
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFair(w, newOFACtrl, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBacklog > n/4 {
		t.Fatalf("max backlog %d of %d messages at gentle rate, want far below", res.MaxBacklog, n)
	}
	if res.Latency.N() != n {
		t.Fatalf("latencies = %d, want %d", res.Latency.N(), n)
	}
}

func TestRunWindowBurstsComplete(t *testing.T) {
	t.Parallel()
	w, err := BurstArrivals(4, 32, 600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWindow(w, newEBBSched, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != w.N() {
		t.Fatalf("delivered %d of %d", res.Latency.N(), w.N())
	}
	// Burst spacing 600 ≫ expected per-burst completion, so the backlog
	// should stay near one burst's size.
	if res.MaxBacklog > 2*32 {
		t.Fatalf("max backlog %d, want ≤ 64", res.MaxBacklog)
	}
}

// TestLocalClockLivelock pins the hazard documented in the package
// comment: with local clocks, two stations arriving at slot 1 and two at
// slot 2 livelock One-Fail Adaptive unless the very first slot delivers
// (probability ≈ 0.39). Over 20 seeds both outcomes must occur, and
// every incomplete run must show zero successes after slot 1 — the
// guaranteed-collision signature.
func TestLocalClockLivelock(t *testing.T) {
	t.Parallel()
	w := Workload{Arrivals: []uint64{1, 1, 2, 2}}
	completed, livelocked := 0, 0
	for seed := uint64(0); seed < 20; seed++ {
		res, err := RunFair(w, newOFACtrl, rng.New(seed), WithMaxSlots(5000))
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			completed++
			continue
		}
		livelocked++
		// In a livelocked run the only possible delivery was slot 1.
		if res.Delivered > 1 {
			t.Fatalf("seed %d: incomplete run delivered %d messages, want ≤ 1", seed, res.Delivered)
		}
	}
	if completed == 0 || livelocked == 0 {
		t.Fatalf("completed=%d livelocked=%d over 20 seeds, want both outcomes", completed, livelocked)
	}
}

// TestGlobalClockAvoidsLivelock: the same workload completes under the
// global clock for every seed, because all stations share BT-step parity.
func TestGlobalClockAvoidsLivelock(t *testing.T) {
	t.Parallel()
	w := Workload{Arrivals: []uint64{1, 1, 2, 2}}
	for seed := uint64(0); seed < 20; seed++ {
		res, err := RunFair(w, newOFACtrl, rng.New(seed), WithClock(ClockGlobal), WithMaxSlots(5000))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: global clock run did not complete (%d/%d delivered)", seed, res.Delivered, w.N())
		}
	}
}

// TestGlobalClockWindowFastForward: a windowed station arriving long
// after slot 1 on the global clock must fast-forward its schedule and
// still deliver.
func TestGlobalClockWindowFastForward(t *testing.T) {
	t.Parallel()
	w := Workload{Arrivals: []uint64{1000}}
	res, err := RunWindow(w, newEBBSched, rng.New(3), WithClock(ClockGlobal), WithMaxSlots(100000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("late window arrival never delivered under global clock")
	}
	if res.Completion < 1000 {
		t.Fatalf("completion %d before arrival slot 1000", res.Completion)
	}
}

func TestLocalClockParity(t *testing.T) {
	t.Parallel()
	// A station arriving at slot 5 must see its first BT-step (probability
	// 1 at σ=0) at global slot 6 (local step 2). With a single station the
	// delivery therefore happens at global slot 5 or 6.
	ctrl, err := newOFACtrl()
	if err != nil {
		t.Fatal(err)
	}
	st := &localClockStation{inner: protocol.NewFairStation(ctrl), arrival: 5}
	res, err := RunFair(Workload{Arrivals: []uint64{5}}, newOFACtrl, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	if res.Completion < 5 || res.Completion > 6 {
		t.Fatalf("single late arrival completed at %d, want 5 or 6", res.Completion)
	}
	if res.Latency.Max() > 2 {
		t.Fatalf("latency %v, want ≤ 2", res.Latency.Max())
	}
}
