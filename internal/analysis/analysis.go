// Package analysis encodes the closed-form results of the paper's
// theorems and lemmas: the running-time constants of Theorems 1 and 2,
// the threshold quantities τ and M of the One-Fail Adaptive analysis
// (Lemma 5/6), the balls-in-bins threshold of Lemma 1, and the analysis
// ratios reported in the last column of Table 1.
//
// The experiment harness uses these to print the paper's "Analysis"
// column next to measured values, and tests use them to confirm the
// simulated protocols respect their proven bounds.
package analysis

import (
	"fmt"
	"math"
)

// OFARatio returns the leading constant of Theorem 1: One-Fail Adaptive
// solves static k-selection in 2(δ+1)k + O(log²k) slots, so the
// steps/nodes ratio converges to 2(δ+1) for large k. For the paper's
// δ = 2.72 this is 7.44 (reported as 7.4 in Table 1).
func OFARatio(delta float64) float64 {
	return 2 * (delta + 1)
}

// OFASlotBound returns the Theorem 1 running-time bound 2(δ+1)k + c·log₂²k
// for the given additive constant c (the paper leaves the constant of the
// O(log²k) term unspecified; tests calibrate c empirically).
func OFASlotBound(k int, delta, c float64) float64 {
	if k <= 0 {
		return 0
	}
	logK := math.Log2(float64(k) + 1)
	return 2*(delta+1)*float64(k) + c*logK*logK
}

// OFASuccessProb returns the Theorem 1 success probability 1 − 2/(1+k).
func OFASuccessProb(k int) float64 {
	return 1 - 2/(1+float64(k))
}

// Tau returns τ = 300·δ·ln(1+k), the round-length parameter of the
// One-Fail Adaptive analysis (Appendix A: rounds begin when κ̃ crosses
// multiples of τ).
func Tau(k int, delta float64) float64 {
	return 300 * delta * math.Log(1+float64(k))
}

// Gamma returns γ = (δ−1)(3−δ)/(δ−2), the estimator-gap slack of Lemma 3.
// It requires δ > 2 (true for the admissible range δ > e).
func Gamma(delta float64) float64 {
	return (delta - 1) * (3 - delta) / (delta - 2)
}

// SubroundSum returns S = 2·Σ_{j=0..4}(5/6)^j·τ, the maximum number of
// messages delivered across the five sub-rounds of a round in the Lemma 5
// analysis.
func SubroundSum(k int, delta float64) float64 {
	tau := Tau(k, delta)
	sum := 0.0
	for j := 0; j < 5; j++ {
		sum += math.Pow(5.0/6.0, float64(j))
	}
	return 2 * sum * tau
}

// MThreshold returns M, the residual-density threshold of Lemmas 5 and 6:
// once at most M messages remain, the BT algorithm finishes the protocol.
//
//	M = ((δ+1)·lnδ − 1)/(lnδ − 1)·S + ((γ+2τ+1)·lnδ − 1)/(lnδ − 1)
//
// M requires ln δ > 1, i.e. δ > e — the same condition as Theorem 1. Note
// that for δ close to e the denominator lnδ − 1 approaches 0 and M blows
// up; with the paper's simulated δ = 2.72 (ln δ ≈ 1.00063) M is
// astronomically large, which is why the O(log²k) additive term is "mainly
// relevant for moderate values of k" only through its constants (§5).
func MThreshold(k int, delta float64) (float64, error) {
	lnD := math.Log(delta)
	if lnD <= 1 {
		return 0, fmt.Errorf("analysis: M requires δ > e, got %v", delta)
	}
	tau := Tau(k, delta)
	s := SubroundSum(k, delta)
	gamma := Gamma(delta)
	m := ((delta+1)*lnD-1)/(lnD-1)*s + ((gamma+2*tau+1)*lnD-1)/(lnD-1)
	return m, nil
}

// EBBRatio returns the leading constant of Theorem 2: Exp Back-on/Back-off
// solves static k-selection within 4(1+1/δ)k slots w.h.p., so the
// worst-case ratio is 4(1+1/δ). For the paper's δ = 0.366 this is 14.93
// (reported as 14.9 in Table 1). The paper observes measured ratios of
// 4–8, "off by only a small constant factor" from the bound.
func EBBRatio(delta float64) float64 {
	return 4 * (1 + 1/delta)
}

// EBBSlotBound returns the Theorem 2 bound 4(1+1/δ)k.
func EBBSlotBound(k int, delta float64) float64 {
	return EBBRatio(delta) * float64(k)
}

// Lemma1Threshold returns the minimum number of balls
// m ≥ (2e/(1−eδ)²)(1 + (β+1/2)·ln k) for which Lemma 1 guarantees that
// throwing m balls into w ≥ m bins yields at least δm singleton bins with
// probability at least 1 − 1/k^β. Requires 0 < δ < 1/e.
func Lemma1Threshold(k int, delta, beta float64) (float64, error) {
	if !(delta > 0 && delta < 1/math.E) {
		return 0, fmt.Errorf("analysis: Lemma 1 requires 0 < δ < 1/e, got %v", delta)
	}
	if beta <= 0 {
		return 0, fmt.Errorf("analysis: Lemma 1 requires β > 0, got %v", beta)
	}
	den := 1 - math.E*delta
	return (2 * math.E / (den * den)) * (1 + (beta+0.5)*math.Log(float64(k))), nil
}

// LFARatio returns the analysis ratio of Log-Fails Adaptive from [7]:
// (e+1+ξδ+ξβ)/(1−ξt). With the paper's parameters ξδ = ξβ = 0.1 this
// yields 7.84 for ξt = 1/2 and 4.35 for ξt = 1/10 — the values 7.8 and
// 4.4 reported in Table 1's "Analysis" column.
func LFARatio(xiDelta, xiBeta, xiT float64) float64 {
	return (math.E + 1 + xiDelta + xiBeta) / (1 - xiT)
}

// LLIBRatioAsymptotic returns the asymptotic form of Loglog-Iterated
// Back-off's makespan ratio, Θ(loglog k / logloglog k), evaluated without
// a leading constant. Table 1 prints the symbolic form; this function
// exists for shape checks (the ratio must grow, slowly, with k).
func LLIBRatioAsymptotic(k int) float64 {
	if k < 4 {
		return 1
	}
	ll := math.Log2(math.Log2(float64(k)))
	if ll <= 1 {
		return 1
	}
	lll := math.Log2(ll)
	if lll < 1 {
		lll = 1
	}
	return ll / lll
}

// FairOptimalRatio returns e, the best possible steps/nodes ratio for any
// fair protocol (all nodes using the same transmission probability per
// slot): the per-slot success probability is at most max_p m·p(1−p)^(m−1)
// ≈ 1/e, giving at least e·k slots in expectation. §5 uses this to put
// the measured ratios in perspective.
func FairOptimalRatio() float64 { return math.E }
