package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rng"
)

// newTestRand returns a deterministic generator seeded from the test name.
func newTestRand(t *testing.T) *rng.Rand {
	t.Helper()
	return rng.NewStream(424242, t.Name())
}

// TestTable1AnalysisColumn pins the "Analysis" column of the paper's
// Table 1 to the encoded formulas: 7.8 and 4.4 for Log-Fails Adaptive,
// 7.4 for One-Fail Adaptive, 14.9 for Exp Back-on/Back-off (all at the
// paper's parameter choices, rounded to one decimal as printed).
func TestTable1AnalysisColumn(t *testing.T) {
	t.Parallel()
	round1 := func(x float64) float64 { return math.Round(x*10) / 10 }
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{name: "LFA xiT=1/2", got: LFARatio(0.1, 0.1, 0.5), want: 7.8},
		{name: "LFA xiT=1/10", got: LFARatio(0.1, 0.1, 0.1), want: 4.4},
		{name: "OFA delta=2.72", got: OFARatio(core.DefaultOFADelta), want: 7.4},
		{name: "EBB delta=0.366", got: EBBRatio(core.DefaultEBBDelta), want: 14.9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if round1(tt.got) != tt.want {
				t.Fatalf("analysis ratio = %v (%v rounded), want %v", tt.got, round1(tt.got), tt.want)
			}
		})
	}
}

func TestOFASlotBoundMonotone(t *testing.T) {
	t.Parallel()
	prev := 0.0
	for _, k := range []int{1, 2, 10, 100, 10000} {
		b := OFASlotBound(k, core.DefaultOFADelta, 1)
		if b <= prev {
			t.Fatalf("bound not increasing at k=%d: %v after %v", k, b, prev)
		}
		prev = b
	}
	if got := OFASlotBound(0, core.DefaultOFADelta, 1); got != 0 {
		t.Fatalf("bound at k=0 = %v, want 0", got)
	}
}

func TestOFASuccessProb(t *testing.T) {
	t.Parallel()
	if got := OFASuccessProb(1); got != 0 {
		t.Errorf("success prob at k=1 = %v, want 0", got)
	}
	if got := OFASuccessProb(999); math.Abs(got-0.998) > 1e-12 {
		t.Errorf("success prob at k=999 = %v, want 0.998", got)
	}
	f := func(kRaw uint16) bool {
		k := int(kRaw)
		p := OFASuccessProb(k)
		return p < 1 && p >= -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTauGrowsLogarithmically(t *testing.T) {
	t.Parallel()
	// τ(k²) ≈ 2·τ(k) for large k.
	k := 1000
	r := Tau(k*k, core.DefaultOFADelta) / Tau(k, core.DefaultOFADelta)
	if math.Abs(r-2) > 0.01 {
		t.Fatalf("τ(k²)/τ(k) = %v, want ~2", r)
	}
}

func TestGamma(t *testing.T) {
	t.Parallel()
	// γ must satisfy γ ≥ (δ−1)(3−δ)/(δ−2) ≥ 0 for admissible δ
	// (e < δ < 3 makes every factor positive).
	for _, delta := range []float64{2.72, 2.8, 2.99} {
		if g := Gamma(delta); g < 0 {
			t.Errorf("γ(%v) = %v, want ≥ 0", delta, g)
		}
	}
}

func TestMThreshold(t *testing.T) {
	t.Parallel()
	if _, err := MThreshold(1000, math.E); err == nil {
		t.Error("δ=e accepted, want error (needs lnδ > 1)")
	}
	// For δ comfortably above e, M is positive and grows with k like τ.
	m1, err := MThreshold(100, 2.9)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MThreshold(10000, 2.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(m2 > m1 && m1 > 0) {
		t.Fatalf("M(100)=%v, M(10000)=%v, want increasing positive", m1, m2)
	}
	// The paper's own δ=2.72 sits just above e: M must still be finite
	// and positive, just enormous.
	m3, err := MThreshold(1000, core.DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	if !(m3 > 0 && !math.IsInf(m3, 0)) {
		t.Fatalf("M at δ=2.72 = %v, want finite positive", m3)
	}
}

func TestLemma1Threshold(t *testing.T) {
	t.Parallel()
	if _, err := Lemma1Threshold(1000, 0.5, 1); err == nil {
		t.Error("δ=0.5 ≥ 1/e accepted, want error")
	}
	if _, err := Lemma1Threshold(1000, 0.1, 0); err == nil {
		t.Error("β=0 accepted, want error")
	}
	// The threshold grows as δ → 1/e (the (1−eδ)² denominator).
	loose, err := Lemma1Threshold(1000, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Lemma1Threshold(1000, 0.36, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tight <= loose {
		t.Fatalf("threshold(δ=0.36)=%v ≤ threshold(δ=0.1)=%v, want larger near 1/e", tight, loose)
	}
}

// TestLemma1Empirical verifies Lemma 1's conclusion by direct simulation:
// for m above the threshold and w = m bins, the number of singleton bins
// is at least δm with probability well above 1 − 1/k^β.
func TestLemma1Empirical(t *testing.T) {
	t.Parallel()
	const delta, beta = 0.25, 1.0
	k := 300
	thr, err := Lemma1Threshold(k, delta, beta)
	if err != nil {
		t.Fatal(err)
	}
	m := int(thr) + 1
	if m > k {
		k = m // Lemma requires k ≥ m; enlarge k accordingly.
	}
	src := newTestRand(t)
	const trials = 2000
	bad := 0
	counts := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		for b := 0; b < m; b++ {
			counts[src.Intn(m)]++
		}
		singles := 0
		for _, c := range counts {
			if c == 1 {
				singles++
			}
		}
		if float64(singles) < delta*float64(m) {
			bad++
		}
	}
	allowed := trials/int(math.Pow(float64(k), beta))*5 + 10
	if bad > allowed {
		t.Fatalf("δm singleton failures: %d/%d, allowed ~%d", bad, trials, allowed)
	}
}

func TestLLIBRatioAsymptoticShape(t *testing.T) {
	t.Parallel()
	// Must be weakly increasing over the experiment range and stay small.
	prev := 0.0
	for _, k := range []int{10, 100, 10000, 1000000, 100000000} {
		r := LLIBRatioAsymptotic(k)
		if r < prev-1e-9 {
			t.Fatalf("asymptotic ratio decreased at k=%d: %v after %v", k, r, prev)
		}
		if r > 4 {
			t.Fatalf("asymptotic ratio at k=%d = %v, implausibly large", k, r)
		}
		prev = r
	}
}

func TestFairOptimalRatio(t *testing.T) {
	t.Parallel()
	if got := FairOptimalRatio(); got != math.E {
		t.Fatalf("optimal fair ratio = %v, want e", got)
	}
	// Every protocol's analysis ratio must exceed the fair-protocol
	// optimum (§5: "the smallest ratio expected by any algorithm in which
	// nodes use the same probability at any step is e").
	for name, ratio := range map[string]float64{
		"OFA": OFARatio(core.DefaultOFADelta),
		"EBB": EBBRatio(core.DefaultEBBDelta),
		"LFA": LFARatio(0.1, 0.1, 0.1),
	} {
		if ratio <= math.E {
			t.Errorf("%s analysis ratio %v ≤ e", name, ratio)
		}
	}
}
