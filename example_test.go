package mac_test

import (
	"context"
	"fmt"

	mac "repro"
)

// ExampleRun shows the single experiment entry point shared by the
// library, the CLI and the HTTP API: build a declarative spec, run it,
// and collect the typed result. Identical specs produce identical
// results on every front end.
func ExampleRun() {
	exec, err := mac.Run(context.Background(), mac.SolveExperiment(mac.SolveSpec{
		Protocol: mac.ProtocolSpec{Name: "one-fail"},
		K:        1000,
		Seed:     42,
	}))
	if err != nil {
		panic(err)
	}
	res, err := exec.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s solved k=%d in %d slots (ratio %.2f)\n",
		res.Solve.System, res.Solve.K, res.Solve.Slots, res.Solve.Ratio)
	// Output:
	// One-Fail Adaptive solved k=1000 in 7323 slots (ratio 7.32)
}

// ExampleRun_events streams typed progress events while an experiment
// runs — the same records the HTTP /stream endpoint and `macsim
// -stream` emit as NDJSON.
func ExampleRun_events() {
	exec, err := mac.Run(context.Background(), mac.EvaluateExperiment(mac.EvaluateSpec{
		Protocols: []mac.ProtocolSpec{{Name: "exp-bb"}},
		Ks:        []int{100},
		Runs:      2,
		Seed:      1,
	}))
	if err != nil {
		panic(err)
	}
	// Each run's result is deterministic in the seed, but sweep workers
	// publish concurrently, so events may arrive in any order — collect
	// them and print by run index.
	slots := map[int]uint64{}
	for ev, err := range exec.Events() {
		if err != nil {
			panic(err)
		}
		if p, ok := ev.(mac.SweepProgress); ok {
			slots[p.Run] = p.Slots
		}
	}
	for run := 0; run < len(slots); run++ {
		fmt.Printf("run %d of k=100 finished in %d slots\n", run, slots[run])
	}
	// Output:
	// run 0 of k=100 finished in 604 slots
	// run 1 of k=100 finished in 601 slots
}

// ExampleEvaluateDynamic measures sustained throughput under dynamic
// arrivals — the §6 future-work extension. Every protocol faces the
// identical workload instances (matched pairs), so rankings are
// comparable under one seed.
func ExampleEvaluateDynamic() {
	lineup := mac.DynamicProtocols()[:1] // Exp Back-on/Back-off
	series, err := mac.EvaluateDynamic(lineup, mac.DynamicConfig{
		Lambdas:  []float64{0.05, 0.1},
		Messages: 500,
		Runs:     2,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Printf("%s λ=%.2f throughput=%.3f msgs/slot (%d/%d drained)\n",
				s.Protocol.Name, p.Lambda, p.Throughput.Mean(), p.Completed, p.Runs)
		}
	}
	// Output:
	// Exp Back-on/Back-off λ=0.05 throughput=0.050 msgs/slot (2/2 drained)
	// Exp Back-on/Back-off λ=0.10 throughput=0.101 msgs/slot (2/2 drained)
}

// ExampleRun_adaptivePrecision asks for a result at a target precision
// instead of a fixed repetition count: each point replicates until its
// Student-t confidence interval is narrower than Epsilon·mean at the
// requested confidence (bounded by MinReps/MaxReps), so low-variance
// points stop early and the simulation budget concentrates where
// variance is high. The result document reports the error bar (CI95)
// and the replications spent (RepsUsed) per point.
func ExampleRun_adaptivePrecision() {
	exec, err := mac.Run(context.Background(), mac.EvaluateExperiment(mac.EvaluateSpec{
		Protocols: []mac.ProtocolSpec{{Name: "exp-bb"}},
		Ks:        []int{300},
		Seed:      1,
		Precision: &mac.PrecisionSpec{Epsilon: 0.1, Confidence: 0.95, MinReps: 3, MaxReps: 64},
	}))
	if err != nil {
		panic(err)
	}
	res, err := exec.Result()
	if err != nil {
		panic(err)
	}
	cell := res.Evaluate.Series[0].Cells[0]
	fmt.Printf("k=%d converged after %d of at most 64 replications\n", cell.K, cell.RepsUsed)
	fmt.Printf("mean slots %.1f ± %.1f (95%% CI)\n", cell.MeanSlots, cell.CI95)
	// Output:
	// k=300 converged after 19 of at most 64 replications
	// mean slots 1607.3 ± 150.0 (95% CI)
}
